//! The on-disk shard store.
//!
//! Layout: one directory per experiment fingerprint, one file per
//! shard —
//!
//! ```text
//! <root>/
//!   <fingerprint-hex>/          32 lowercase hex chars
//!     0.bin  1.bin  2.bin ...   one entry per shard index
//! ```
//!
//! Every entry is framed as `magic ∥ version ∥ fingerprint ∥ shard ∥
//! payload-len ∥ checksum ∥ payload`; [`ShardCache::load`] re-verifies
//! the whole frame on every read, so a truncated, bit-flipped,
//! wrong-version or misplaced (renamed/moved) file is a counted miss,
//! never a crash and never a wrong answer. Writes go through a temp
//! file plus atomic rename — a reader can never observe a half-written
//! entry, and concurrent writers of the same shard are harmless (they
//! race to rename identical bytes).

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::codec::{decode_from_slice, encode_to_vec, CacheCodec};
use crate::fingerprint::{Fingerprint, FNV_OFFSET, FNV_PRIME, FORMAT_VERSION};

/// Entry-frame magic: "nanobound shard cache".
pub(crate) const MAGIC: [u8; 4] = *b"NBSC";
/// Fixed frame bytes before the payload: magic, version, fingerprint,
/// shard index, len, checksum. The fingerprint and shard index are part
/// of the frame so an entry only ever verifies at its own address: a
/// file that lands under the wrong name (partial sync, manual copy) is
/// a miss, not a silently wrong shard.
const HEADER_LEN: usize = 4 + 4 + 16 + 8 + 8 + 8;

/// FNV-1a over the payload — an integrity check against torn writes and
/// media corruption (not an authenticity mechanism).
fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = FNV_OFFSET;
    for &b in payload {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Disambiguates temp-file names between racing writers in one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Counters of one cache's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from disk (frame verified, payload decoded).
    pub hits: u64,
    /// Lookups that fell through to recomputation — absent, unreadable,
    /// corrupt, stale-version or undecodable entries all count here.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Writes that failed (disk full, permissions); the result is still
    /// returned to the caller, only the cache stays cold.
    pub write_errors: u64,
}

/// A content-addressed, corruption-tolerant shard result store.
///
/// Shared by reference across worker threads (all counters are atomic;
/// the filesystem provides write atomicity via rename).
#[derive(Debug)]
pub struct ShardCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    /// Refcounts of experiment fingerprints currently being computed —
    /// the set a concurrent GC sweep must not delete out from under a
    /// request (see [`ShardCache::pin`]).
    in_flight: Mutex<HashMap<Fingerprint, usize>>,
}

/// An RAII pin marking one experiment fingerprint as in flight for the
/// lifetime of the guard; see [`ShardCache::pin`].
#[must_use = "dropping the guard immediately unpins the fingerprint"]
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    registry: &'a Mutex<HashMap<Fingerprint, usize>>,
    fingerprint: Fingerprint,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut pins = self.registry.lock().expect("in-flight registry lock");
        if let Some(count) = pins.get_mut(&self.fingerprint) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.fingerprint);
            }
        }
    }
}

impl ShardCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory cannot
    /// be created — the one failure that is a configuration error
    /// rather than a degraded-mode condition.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ShardCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            in_flight: Mutex::new(HashMap::new()),
        })
    }

    /// Pins `fingerprint` as in flight until the returned guard drops.
    ///
    /// A fingerprint is "in flight" while a request is between key
    /// computation and final result assembly — the window in which a
    /// concurrent [`ShardCache::sweep`](crate::gc) deleting its entries
    /// would discard work the request is about to read back or has just
    /// written. Pins are refcounted, so overlapping requests on the same
    /// experiment compose.
    pub fn pin(&self, fingerprint: Fingerprint) -> InFlightGuard<'_> {
        let mut pins = self.in_flight.lock().expect("in-flight registry lock");
        *pins.entry(fingerprint).or_insert(0) += 1;
        InFlightGuard {
            registry: &self.in_flight,
            fingerprint,
        }
    }

    /// A snapshot of the pinned fingerprints, deterministically ordered
    /// (by hex digest) — the `protected` argument a mid-flight GC sweep
    /// should pass.
    #[must_use]
    pub fn in_flight(&self) -> Vec<Fingerprint> {
        let pins = self.in_flight.lock().expect("in-flight registry lock");
        let mut all: Vec<Fingerprint> = pins.keys().copied().collect();
        all.sort_by_key(|fp| fp.to_bytes());
        all
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of one entry (exposed for tests and tooling).
    #[must_use]
    pub fn entry_path(&self, fingerprint: &Fingerprint, shard: u64) -> PathBuf {
        self.root
            .join(fingerprint.to_hex())
            .join(format!("{shard}.bin"))
    }

    /// Loads one shard's raw payload; `None` (a counted miss) for
    /// absent, truncated, corrupt or wrong-version entries.
    #[must_use]
    pub fn load(&self, fingerprint: &Fingerprint, shard: u64) -> Option<Vec<u8>> {
        match self.read_verified(fingerprint, shard) {
            Some(mut frame) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                frame.drain(..HEADER_LEN);
                Some(frame)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads and frame-verifies one entry, returning the whole file
    /// (header included, payload at `HEADER_LEN..`) so callers can
    /// borrow the payload without a second copy.
    fn read_verified(&self, fingerprint: &Fingerprint, shard: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(self.entry_path(fingerprint, shard)).ok()?;
        let (header, payload) = bytes.split_at_checked(HEADER_LEN)?;
        if header[..4] != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(header[4..8].try_into().ok()?);
        if version != FORMAT_VERSION {
            return None;
        }
        if header[8..24] != fingerprint.to_bytes() || header[24..32] != shard.to_le_bytes() {
            return None;
        }
        let len = u64::from_le_bytes(header[32..40].try_into().ok()?);
        if len != payload.len() as u64 {
            return None;
        }
        let stored_checksum = u64::from_le_bytes(header[40..48].try_into().ok()?);
        if stored_checksum != checksum(payload) {
            return None;
        }
        Some(bytes)
    }

    /// Stores one shard's payload, best-effort: failures are counted in
    /// [`CacheStats::write_errors`] and otherwise ignored — the cache
    /// never turns a computable result into an error.
    pub fn store(&self, fingerprint: &Fingerprint, shard: u64, payload: &[u8]) {
        match self.try_store(fingerprint, shard, payload) {
            Ok(()) => self.writes.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.write_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    fn try_store(&self, fingerprint: &Fingerprint, shard: u64, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(fingerprint, shard);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir)?;
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame.extend_from_slice(&fingerprint.to_bytes());
        frame.extend_from_slice(&shard.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let tmp = dir.join(format!(
            "{shard}.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, &frame)?;
        let renamed = fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }

    /// Loads and decodes one shard; decode failures are misses.
    #[must_use]
    pub fn load_value<T: CacheCodec>(&self, fingerprint: &Fingerprint, shard: u64) -> Option<T> {
        match self
            .read_verified(fingerprint, shard)
            .and_then(|frame| decode_from_slice(&frame[HEADER_LEN..]))
        {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Encodes and stores one shard (best-effort, like
    /// [`ShardCache::store`]).
    pub fn store_value<T: CacheCodec>(&self, fingerprint: &Fingerprint, shard: u64, value: &T) {
        self.store(fingerprint, shard, &encode_to_vec(value));
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nanobound_cache_store_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp(tag: &str) -> Fingerprint {
        FingerprintBuilder::new(tag).finish()
    }

    #[test]
    fn roundtrip_and_counters() {
        let dir = scratch("roundtrip");
        let cache = ShardCache::open(&dir).unwrap();
        let key = fp("a");
        assert_eq!(cache.load(&key, 0), None);
        cache.store(&key, 0, b"payload");
        assert_eq!(cache.load(&key, 0).as_deref(), Some(&b"payload"[..]));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                writes: 1,
                write_errors: 0
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shards_and_fingerprints_are_independent() {
        let dir = scratch("independent");
        let cache = ShardCache::open(&dir).unwrap();
        cache.store(&fp("a"), 0, b"a0");
        cache.store(&fp("a"), 1, b"a1");
        cache.store(&fp("b"), 0, b"b0");
        assert_eq!(cache.load(&fp("a"), 0).as_deref(), Some(&b"a0"[..]));
        assert_eq!(cache.load(&fp("a"), 1).as_deref(), Some(&b"a1"[..]));
        assert_eq!(cache.load(&fp("b"), 0).as_deref(), Some(&b"b0"[..]));
        assert_eq!(cache.load(&fp("b"), 1), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let dir = scratch("truncated");
        let cache = ShardCache::open(&dir).unwrap();
        let key = fp("t");
        cache.store(&key, 3, b"some payload bytes");
        let path = cache.entry_path(&key, 3);
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert_eq!(cache.load(&key, 3), None, "cut at {cut}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_flipped_bit_is_a_miss() {
        let dir = scratch("bitflip");
        let cache = ShardCache::open(&dir).unwrap();
        let key = fp("f");
        cache.store(&key, 0, b"abc");
        let path = cache.entry_path(&key, 0);
        let clean = fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                fs::write(&path, &bytes).unwrap();
                assert_eq!(cache.load(&key, 0), None, "byte {byte} bit {bit}");
            }
        }
        // Restoring the clean bytes restores the hit.
        fs::write(&path, &clean).unwrap();
        assert_eq!(cache.load(&key, 0).as_deref(), Some(&b"abc"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misplaced_entries_are_misses_not_wrong_answers() {
        // A frame binds its own fingerprint and shard index, so a file
        // that ends up under another entry's path (renamed shard,
        // cross-fingerprint copy, botched sync) never verifies there.
        let dir = scratch("misplaced");
        let cache = ShardCache::open(&dir).unwrap();
        cache.store(&fp("a"), 3, b"shard three");
        // Renamed to a different shard index of the same experiment.
        fs::rename(cache.entry_path(&fp("a"), 3), cache.entry_path(&fp("a"), 4)).unwrap();
        assert_eq!(cache.load(&fp("a"), 4), None);
        // Copied under a different experiment's fingerprint.
        cache.store(&fp("a"), 3, b"shard three");
        fs::create_dir_all(cache.entry_path(&fp("b"), 3).parent().unwrap()).unwrap();
        fs::copy(cache.entry_path(&fp("a"), 3), cache.entry_path(&fp("b"), 3)).unwrap();
        assert_eq!(cache.load(&fp("b"), 3), None);
        // The original, correctly-placed entry still hits.
        assert_eq!(
            cache.load(&fp("a"), 3).as_deref(),
            Some(&b"shard three"[..])
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_version_is_a_miss() {
        let dir = scratch("version");
        let cache = ShardCache::open(&dir).unwrap();
        let key = fp("v");
        cache.store(&key, 0, b"data");
        let path = cache.entry_path(&key, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // The checksum covers only the payload, so the frame is intact
        // and the version check alone must reject the entry.
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.load(&key, 0), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn typed_roundtrip_and_decode_failure_is_a_miss() {
        let dir = scratch("typed");
        let cache = ShardCache::open(&dir).unwrap();
        let key = fp("typed");
        cache.store_value(&key, 0, &vec![1.5f64, -2.0]);
        assert_eq!(cache.load_value::<Vec<f64>>(&key, 0), Some(vec![1.5, -2.0]));
        // Valid frame, but the payload does not decode as the requested
        // type (u64 vec of same byte length would, so ask for bools).
        assert_eq!(cache.load_value::<bool>(&key, 0), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pins_are_refcounted_and_released_on_drop() {
        let dir = scratch("pins");
        let cache = ShardCache::open(&dir).unwrap();
        assert!(cache.in_flight().is_empty());
        let a = cache.pin(fp("a"));
        let a_again = cache.pin(fp("a"));
        let b = cache.pin(fp("b"));
        assert_eq!(
            cache.in_flight().len(),
            2,
            "refcounts collapse to one entry"
        );
        drop(a);
        assert_eq!(
            cache.in_flight().len(),
            2,
            "fingerprint stays pinned while any guard lives"
        );
        drop(a_again);
        assert_eq!(cache.in_flight(), vec![fp("b")]);
        drop(b);
        assert!(cache.in_flight().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_flight_snapshot_is_deterministically_ordered() {
        let dir = scratch("pin_order");
        let cache = ShardCache::open(&dir).unwrap();
        let _guards: Vec<_> = ["z", "m", "a", "q"]
            .iter()
            .map(|tag| cache.pin(fp(tag)))
            .collect();
        let first = cache.in_flight();
        let mut sorted = first.clone();
        sorted.sort_by_key(|f| f.to_bytes());
        assert_eq!(first, sorted);
        assert_eq!(first, cache.in_flight(), "snapshots are stable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_into_unwritable_root_counts_write_error() {
        let dir = scratch("unwritable");
        let cache = ShardCache::open(&dir).unwrap();
        // Make the fingerprint directory a *file*, so create_dir_all fails.
        let key = fp("w");
        fs::write(dir.join(key.to_hex()), b"not a dir").unwrap();
        cache.store(&key, 0, b"data");
        assert_eq!(cache.stats().write_errors, 1);
        assert_eq!(cache.load(&key, 0), None); // still just a miss
        fs::remove_dir_all(&dir).unwrap();
    }
}
