//! Cross-run storage for ε-independent profile measurements.
//!
//! A `profile` request measures two things about a netlist: its
//! activity profile (signal probabilities + switching activity under
//! random patterns) and its Boolean sensitivity. Neither depends on the
//! fault rate ε — activity and sensitivity are functions of structure,
//! pattern count and seed only — yet an ε-grid sweep re-measured both
//! for every grid point because the only persistent store keyed on the
//! whole request. [`ProfileStore`] persists each measurement under an
//! experiment-layer fingerprint that deliberately *excludes* ε, so one
//! measurement serves the entire grid, across runs and processes.
//!
//! The store is a thin layer over [`ShardCache`] and intentionally
//! shares its **root directory** with the shard cache rather than
//! nesting a private subdirectory inside it: [`ShardCache::sweep`]
//! classifies every file under the root, and a foreign subdirectory
//! would be misread as garbage. Sharing the root keeps profile entries
//! first-class citizens of the same GC policy. Collisions are
//! impossible because fingerprints carry their domain tag, and the
//! atomic temp-file + rename write path makes two `ShardCache`
//! instances over one root safe.
//!
//! Per-[`ProfileLayer`] reuse counters make sharing observable — the
//! `profile` summary and the `stats` serve workload report them.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::CacheCodec;
use crate::fingerprint::Fingerprint;
use crate::store::{CacheStats, InFlightGuard, ShardCache};

/// Which ε-independent measurement a profile entry holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileLayer {
    /// Signal probabilities and switching activity (random patterns).
    Activity,
    /// Boolean sensitivity (sampled single-bit-flip analysis).
    Sensitivity,
}

/// Reuse counters of one [`ProfileLayer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileLayerStats {
    /// Measurements served from a previous run (or grid point).
    pub reused: u64,
    /// Lookups that fell through to a fresh measurement.
    pub measured: u64,
}

/// A persistent, corruption-tolerant store of ε-independent profile
/// measurements, keyed by experiment-layer fingerprints.
///
/// Inherits the shard cache's corruption contract wholesale: every
/// failure mode is a counted miss and a re-measurement, never an error
/// and never a wrong answer, so a warm sweep is byte-identical to a
/// cold one.
#[derive(Debug)]
pub struct ProfileStore {
    disk: ShardCache,
    activity_reused: AtomicU64,
    activity_measured: AtomicU64,
    sensitivity_reused: AtomicU64,
    sensitivity_measured: AtomicU64,
}

impl ProfileStore {
    /// Opens (creating if needed) a profile store rooted at `root` —
    /// normally the same directory as the shard cache, see the
    /// [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`io::Error`] when the directory cannot
    /// be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(ProfileStore {
            disk: ShardCache::open(root)?,
            activity_reused: AtomicU64::new(0),
            activity_measured: AtomicU64::new(0),
            sensitivity_reused: AtomicU64::new(0),
            sensitivity_measured: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        self.disk.root()
    }

    /// Loads one measurement; `None` (a counted fresh-measurement) for
    /// absent, corrupt, stale-version or undecodable entries.
    #[must_use]
    pub fn load<T: CacheCodec>(&self, layer: ProfileLayer, fingerprint: &Fingerprint) -> Option<T> {
        let value = self.disk.load_value(fingerprint, 0);
        let (reused, measured) = self.counters(layer);
        if value.is_some() {
            reused.fetch_add(1, Ordering::Relaxed);
        } else {
            measured.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Stores one measurement (best-effort, like [`ShardCache::store`]).
    pub fn store<T: CacheCodec>(&self, fingerprint: &Fingerprint, value: &T) {
        self.disk.store_value(fingerprint, 0, value);
    }

    /// Pins a measurement fingerprint as in flight (see
    /// [`ShardCache::pin`]); a mid-flight GC sweep over the shared root
    /// must treat pinned profile entries as protected too.
    pub fn pin(&self, fingerprint: Fingerprint) -> InFlightGuard<'_> {
        self.disk.pin(fingerprint)
    }

    /// The pinned measurement fingerprints, deterministically ordered
    /// (see [`ShardCache::in_flight`]).
    #[must_use]
    pub fn in_flight(&self) -> Vec<Fingerprint> {
        self.disk.in_flight()
    }

    /// Reuse counters of one layer.
    #[must_use]
    pub fn layer_stats(&self, layer: ProfileLayer) -> ProfileLayerStats {
        let (reused, measured) = self.counters(layer);
        ProfileLayerStats {
            reused: reused.load(Ordering::Relaxed),
            measured: measured.load(Ordering::Relaxed),
        }
    }

    /// The underlying disk-traffic counters (both layers combined).
    #[must_use]
    pub fn io_stats(&self) -> CacheStats {
        self.disk.stats()
    }

    fn counters(&self, layer: ProfileLayer) -> (&AtomicU64, &AtomicU64) {
        match layer {
            ProfileLayer::Activity => (&self.activity_reused, &self.activity_measured),
            ProfileLayer::Sensitivity => (&self.sensitivity_reused, &self.sensitivity_measured),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;
    use std::fs;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nanobound_profile_store_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_counts_per_layer() {
        let dir = scratch("roundtrip");
        let store = ProfileStore::open(&dir).unwrap();
        let fp = FingerprintBuilder::new("profile-activity").finish();
        assert_eq!(
            store.load::<Vec<f64>>(ProfileLayer::Activity, &fp),
            None,
            "cold store misses"
        );
        store.store(&fp, &vec![0.5f64, 0.25]);
        assert_eq!(
            store.load::<Vec<f64>>(ProfileLayer::Activity, &fp),
            Some(vec![0.5, 0.25])
        );
        assert_eq!(
            store.layer_stats(ProfileLayer::Activity),
            ProfileLayerStats {
                reused: 1,
                measured: 1
            }
        );
        assert_eq!(
            store.layer_stats(ProfileLayer::Sensitivity),
            ProfileLayerStats::default(),
            "layers count independently"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reuse_survives_reopening_the_store() {
        let dir = scratch("reopen");
        let fp = FingerprintBuilder::new("profile-sensitivity").finish();
        {
            let store = ProfileStore::open(&dir).unwrap();
            store.store(&fp, &0.75f64);
        }
        let store = ProfileStore::open(&dir).unwrap();
        assert_eq!(
            store.load::<f64>(ProfileLayer::Sensitivity, &fp),
            Some(0.75)
        );
        assert_eq!(store.layer_stats(ProfileLayer::Sensitivity).reused, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shares_a_root_with_a_shard_cache_without_collisions() {
        // The store deliberately lives at the shard cache's root (a
        // nested directory would be misclassified by the GC sweep);
        // domain-tagged fingerprints keep the two namespaces apart.
        let dir = scratch("shared_root");
        let shards = ShardCache::open(&dir).unwrap();
        let store = ProfileStore::open(&dir).unwrap();
        let shard_fp = FingerprintBuilder::new("monte-carlo").finish();
        let profile_fp = FingerprintBuilder::new("profile-activity").finish();
        shards.store_value(&shard_fp, 0, &vec![1u64, 2]);
        store.store(&profile_fp, &vec![0.5f64]);
        assert_eq!(
            shards.load_value::<Vec<u64>>(&shard_fp, 0),
            Some(vec![1, 2])
        );
        assert_eq!(
            store.load::<Vec<f64>>(ProfileLayer::Activity, &profile_fp),
            Some(vec![0.5])
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
