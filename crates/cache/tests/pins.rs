//! Property and stress tests for the in-flight pin registry.
//!
//! `pin`/[`InFlightGuard`] refcounting is what lets a GC sweep run
//! *concurrently* with the requests whose shards it would otherwise
//! reclaim — the serve `gc` workload and the cluster coordinator both
//! lean on it. The properties that must hold:
//!
//! - the registry is an exact multiset: a fingerprint is reported
//!   in-flight iff it has more live guards than drops;
//! - `sweep` never deletes an entry whose fingerprint is protected,
//!   and reclaims it as soon as the last pin drops;
//! - a panic mid-compute unwinds its pin (guards are RAII), so an
//!   aborted request can never protect garbage forever;
//! - concurrent pin/drop traffic from many threads never corrupts a
//!   count.

use std::collections::HashMap;

use proptest::prelude::*;

use nanobound_cache::{FingerprintBuilder, GcPolicy, ShardCache};

fn fingerprint(tag: u64) -> nanobound_cache::Fingerprint {
    let mut builder = FingerprintBuilder::new("pins-test");
    builder.push_u64(tag);
    builder.finish()
}

fn scratch_cache(name: &str) -> (std::path::PathBuf, ShardCache) {
    let dir = std::env::temp_dir().join(format!("nanobound_pins_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), ShardCache::open(&dir).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replays an arbitrary pin/drop script against the registry and
    /// checks `in_flight()` is exactly the live multiset's support at
    /// every step. Ops: `(tag, pin)` — pin fingerprint `tag` or drop
    /// its oldest live guard.
    #[test]
    fn in_flight_mirrors_the_live_guard_multiset(
        script in prop::collection::vec((0_u64..6, any::<bool>()), 1..64)
    ) {
        let (dir, cache) = scratch_cache("script");
        let mut live: HashMap<u64, Vec<_>> = HashMap::new();
        for (tag, pin) in script {
            if pin {
                live.entry(tag).or_default().push(cache.pin(fingerprint(tag)));
            } else if let Some(guards) = live.get_mut(&tag) {
                guards.pop();
            }
            let mut expected: Vec<_> = live
                .iter()
                .filter(|(_, guards)| !guards.is_empty())
                .map(|(&tag, _)| fingerprint(tag))
                .collect();
            expected.sort_by_key(|fingerprint| fingerprint.to_bytes());
            prop_assert_eq!(cache.in_flight(), expected);
        }
        drop(live);
        prop_assert!(cache.in_flight().is_empty(), "all guards dropped");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Under maximum byte pressure, a sweep deletes everything except
    /// entries protected by the in-flight set — and a later sweep
    /// reclaims them the moment their pins are gone.
    #[test]
    fn sweep_never_deletes_a_pinned_entry(
        pin_mask in prop::collection::vec(any::<bool>(), 8..9)
    ) {
        let (dir, cache) = scratch_cache("sweep");
        for tag in 0..8_u64 {
            cache.store(&fingerprint(tag), 0, b"payload");
        }
        let pinned_tags: Vec<u64> = (0..8_u64).filter(|&t| pin_mask[t as usize]).collect();
        let guards: Vec<_> = pinned_tags.iter().map(|&t| cache.pin(fingerprint(t))).collect();
        let policy = GcPolicy { max_bytes: Some(0), max_age: None };
        let report = cache.sweep(&policy, &cache.in_flight());
        prop_assert_eq!(report.kept_entries, pinned_tags.len() as u64);
        for &tag in &pinned_tags {
            prop_assert!(
                cache.load(&fingerprint(tag), 0).is_some(),
                "pinned entry {} survived the sweep", tag
            );
        }
        drop(guards);
        let report = cache.sweep(&policy, &cache.in_flight());
        prop_assert_eq!(report.kept_entries, 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn a_panic_during_compute_unwinds_the_pin() {
    let (dir, cache) = scratch_cache("panic");
    let fp = fingerprint(7);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = cache.pin(fp);
        assert_eq!(cache.in_flight(), vec![fp]);
        panic!("compute blew up mid-flight");
    }));
    assert!(result.is_err(), "the panic propagated");
    assert!(
        cache.in_flight().is_empty(),
        "the unwound guard released its pin"
    );
    // And the released fingerprint is sweepable again.
    cache.store(&fp, 0, b"payload");
    let policy = GcPolicy {
        max_bytes: Some(0),
        max_age: None,
    };
    let report = cache.sweep(&policy, &cache.in_flight());
    assert_eq!(report.deleted_entries, 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_pin_and_drop_traffic_keeps_exact_counts() {
    let (dir, cache) = scratch_cache("threads");
    let fp = fingerprint(1);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..500 {
                    let _guard = cache.pin(fp);
                    // A second overlapping pin of the same fingerprint
                    // exercises the refcount > 1 path.
                    let _inner = cache.pin(fp);
                }
            });
        }
    });
    assert!(
        cache.in_flight().is_empty(),
        "every pin was matched by a drop"
    );
    // The registry is fully drained: a fresh pin counts from one.
    let guard = cache.pin(fp);
    assert_eq!(cache.in_flight(), vec![fp]);
    drop(guard);
    assert!(cache.in_flight().is_empty());
    let _ = std::fs::remove_dir_all(dir);
}
