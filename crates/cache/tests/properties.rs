//! Property tests for the cache's two correctness-critical primitives.
//!
//! - **Codec bit-exactness.** `decode(encode(v))` must reproduce `v`
//!   down to float bit patterns — NaN payloads, signed zeros and
//!   subnormals included — because cached shards are merged with fresh
//!   ones and a warm run is required to be byte-identical to a cold
//!   one. Floats are generated from arbitrary `u64` bit patterns, so
//!   the whole IEEE-754 domain is exercised, not just round numbers.
//! - **Fingerprint sensitivity.** Any single-field perturbation must
//!   change the fingerprint (else two different experiments would share
//!   entries), and the field framing must prevent
//!   ordering/concatenation ambiguities from colliding.

use proptest::prelude::*;

use nanobound_cache::{decode_from_slice, encode_to_vec, Fingerprint, FingerprintBuilder};

/// Builds the reference fingerprint of a synthetic experiment with one
/// field of every push type.
fn reference_fingerprint(
    domain: &str,
    float: f64,
    word: u64,
    count: usize,
    grid: &[f64],
    label: &str,
) -> Fingerprint {
    let mut builder = FingerprintBuilder::new(domain);
    builder.push_f64(float);
    builder.push_u64(word);
    builder.push_usize(count);
    builder.push_f64s(grid);
    builder.push_str(label);
    builder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn f64_roundtrips_bit_exactly_for_any_pattern(bits in any::<u64>()) {
        // Arbitrary bit patterns cover NaNs (quiet and signaling, any
        // payload), ±0, ±inf and subnormals.
        let value = f64::from_bits(bits);
        let decoded: f64 = decode_from_slice(&encode_to_vec(&value)).expect("valid encoding");
        prop_assert_eq!(decoded.to_bits(), bits);
    }

    #[test]
    fn f64_vectors_roundtrip_bit_exactly(patterns in prop::collection::vec(any::<u64>(), 0..64)) {
        let values: Vec<f64> = patterns.iter().map(|&b| f64::from_bits(b)).collect();
        let decoded: Vec<f64> =
            decode_from_slice(&encode_to_vec(&values)).expect("valid encoding");
        let bits: Vec<u64> = decoded.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits, patterns);
    }

    #[test]
    fn mixed_containers_roundtrip(
        words in prop::collection::vec(any::<u64>(), 0..16),
        flag in any::<bool>(),
        maybe in any::<u64>(),
        take in any::<bool>(),
    ) {
        let value = (words, flag, if take { Some(maybe) } else { None });
        let decoded = decode_from_slice::<(Vec<u64>, bool, Option<u64>)>(&encode_to_vec(&value));
        prop_assert_eq!(decoded, Some(value));
    }

    #[test]
    fn truncated_encodings_never_decode(
        patterns in prop::collection::vec(any::<u64>(), 1..16),
        cut_seed in any::<u64>(),
    ) {
        let values: Vec<f64> = patterns.iter().map(|&b| f64::from_bits(b)).collect();
        let bytes = encode_to_vec(&values);
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert_eq!(decode_from_slice::<Vec<f64>>(&bytes[..cut]), None);
    }

    #[test]
    fn every_single_field_perturbation_changes_the_fingerprint(
        float_bits in any::<u64>(),
        word in any::<u64>(),
        count in 0usize..1_000_000,
        grid_bits in prop::collection::vec(any::<u64>(), 1..8),
        label_seed in any::<u64>(),
        flip in 0u32..64,
    ) {
        let float = f64::from_bits(float_bits);
        let grid: Vec<f64> = grid_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let label = format!("bench-{label_seed:x}");
        let base = reference_fingerprint("exp", float, word, count, &grid, &label);

        // Perturb exactly one field at a time; every perturbation is a
        // different experiment and must address different entries.
        let bit_flipped_float = f64::from_bits(float_bits ^ (1 << flip));
        let mut perturbed_grid = grid.clone();
        perturbed_grid[0] = f64::from_bits(perturbed_grid[0].to_bits() ^ 1);
        let variants = [
            reference_fingerprint("other", float, word, count, &grid, &label),
            reference_fingerprint("exp", bit_flipped_float, word, count, &grid, &label),
            reference_fingerprint("exp", float, word ^ (1 << flip), count, &grid, &label),
            reference_fingerprint("exp", float, word, count + 1, &grid, &label),
            reference_fingerprint("exp", float, word, count, &perturbed_grid, &label),
            reference_fingerprint("exp", float, word, count, &grid, &format!("{label}x")),
        ];
        for (i, variant) in variants.iter().enumerate() {
            prop_assert_ne!(base, *variant, "perturbation {} collided", i);
        }
        // And the unperturbed rebuild is stable.
        prop_assert_eq!(
            base,
            reference_fingerprint("exp", float, word, count, &grid, &label)
        );
    }

    #[test]
    fn byte_split_points_are_not_ambiguous(
        bytes in prop::collection::vec(any::<u8>(), 2..64),
        split_a in any::<u64>(),
        split_b in any::<u64>(),
    ) {
        // push(x[..i]); push(x[i..]) must differ from the same bytes
        // split at any other point — length framing, not separators,
        // carries the field boundary.
        let a = (split_a % (bytes.len() as u64 + 1)) as usize;
        let b = (split_b % (bytes.len() as u64 + 1)) as usize;
        let split_fp = |at: usize| {
            let mut builder = FingerprintBuilder::new("split");
            builder.push_bytes(&bytes[..at]);
            builder.push_bytes(&bytes[at..]);
            builder.finish()
        };
        if a == b {
            prop_assert_eq!(split_fp(a), split_fp(b));
        } else {
            prop_assert_ne!(split_fp(a), split_fp(b));
        }
    }

    #[test]
    fn field_order_is_part_of_the_identity(a in any::<u64>(), b in any::<u64>()) {
        let ordered = |x: u64, y: u64| {
            let mut builder = FingerprintBuilder::new("order");
            builder.push_u64(x);
            builder.push_u64(y);
            builder.finish()
        };
        if a == b {
            prop_assert_eq!(ordered(a, b), ordered(b, a));
        } else {
            prop_assert_ne!(ordered(a, b), ordered(b, a));
        }
    }

    #[test]
    fn slice_push_differs_from_elementwise_pushes(
        grid_bits in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        // `push_f64s` length-frames the slice; pushing the same values
        // one by one is a different (unframed) field sequence and must
        // not collide with it.
        let grid: Vec<f64> = grid_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut framed = FingerprintBuilder::new("frame");
        framed.push_f64s(&grid);
        let mut unframed = FingerprintBuilder::new("frame");
        for &v in &grid {
            unframed.push_f64(v);
        }
        prop_assert_ne!(framed.finish(), unframed.finish());
    }

    #[test]
    fn hex_and_byte_forms_agree(seed in any::<u64>()) {
        let mut builder = FingerprintBuilder::new("forms");
        builder.push_u64(seed);
        let fp = builder.finish();
        let hex = fp.to_hex();
        prop_assert_eq!(hex.len(), 32);
        let bytes = fp.to_bytes();
        // to_hex prints hi∥lo big-endian-style hex over the same words
        // to_bytes stores little-endian; reconstruct and compare.
        let hi = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let lo = u64::from_le_bytes(bytes[8..].try_into().unwrap());
        prop_assert_eq!(format!("{hi:016x}{lo:016x}"), hex);
    }
}

/// The named special values the codec contract calls out, pinned
/// deterministically on top of the random-bit-pattern property.
#[test]
fn named_special_floats_roundtrip_bit_exactly() {
    let specials = [
        0.0f64,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -f64::NAN,
        f64::from_bits(0x7ff8_0000_dead_beef), // quiet NaN with payload
        f64::from_bits(0x7ff0_0000_0000_0001), // signaling NaN
        f64::MIN_POSITIVE,                     // smallest normal
        f64::from_bits(1),                     // smallest subnormal
        f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
        f64::MAX,
        f64::MIN,
    ];
    for v in specials {
        let decoded: f64 = decode_from_slice(&encode_to_vec(&v)).expect("valid encoding");
        assert_eq!(decoded.to_bits(), v.to_bits(), "value {v:?}");
    }
    // And ±0 fingerprints are distinct experiments.
    let fp = |x: f64| {
        let mut b = FingerprintBuilder::new("zeros");
        b.push_f64(x);
        b.finish()
    };
    assert_ne!(fp(0.0), fp(-0.0));
}
