//! Property-based tests for the circuit generators: arithmetic
//! correctness against `u128` reference computations over random widths
//! and operands.

use proptest::prelude::*;

use nanobound_gen::{adder, alu, comparator, decoder, ecc, multiplier, mux, parity, priority};

/// Packs an integer into an LSB-first bool vector of the given width.
fn bits(value: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

/// Reads an LSB-first bool slice as an integer.
fn value(bits: &[bool]) -> u128 {
    bits.iter()
        .enumerate()
        .map(|(i, &b)| u128::from(b) << i)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ripple_carry_adds(width in 1usize..=32, a in any::<u64>(), b in any::<u64>(), cin in any::<bool>()) {
        let a = u128::from(a) & ((1 << width) - 1);
        let b = u128::from(b) & ((1 << width) - 1);
        let rca = adder::ripple_carry(width).unwrap();
        let mut inputs = bits(a, width);
        inputs.extend(bits(b, width));
        inputs.push(cin);
        let out = rca.evaluate(&inputs).unwrap();
        let expect = a + b + u128::from(cin);
        prop_assert_eq!(value(&out), expect, "{} + {} + {}", a, b, cin);
    }

    #[test]
    fn carry_lookahead_matches_ripple(width in 1usize..=16, a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let a = u128::from(a) & ((1 << width) - 1);
        let b = u128::from(b) & ((1 << width) - 1);
        let mut inputs = bits(a, width);
        inputs.extend(bits(b, width));
        inputs.push(cin);
        let rca = adder::ripple_carry(width).unwrap().evaluate(&inputs).unwrap();
        let cla = adder::carry_lookahead(width).unwrap().evaluate(&inputs).unwrap();
        prop_assert_eq!(rca, cla);
    }

    #[test]
    fn kogge_stone_matches_ripple(width in 1usize..=16, a in any::<u32>(), b in any::<u32>(), cin in any::<bool>()) {
        let a = u128::from(a) & ((1 << width) - 1);
        let b = u128::from(b) & ((1 << width) - 1);
        let mut inputs = bits(a, width);
        inputs.extend(bits(b, width));
        inputs.push(cin);
        let rca = adder::ripple_carry(width).unwrap().evaluate(&inputs).unwrap();
        let ks = adder::kogge_stone(width).unwrap().evaluate(&inputs).unwrap();
        prop_assert_eq!(rca, ks);
    }

    #[test]
    fn multiplier_multiplies(wa in 1usize..=8, wb in 1usize..=8, a in any::<u16>(), b in any::<u16>()) {
        let a = u128::from(a) & ((1 << wa) - 1);
        let b = u128::from(b) & ((1 << wb) - 1);
        let m = multiplier::array(wa, wb).unwrap();
        let mut inputs = bits(a, wa);
        inputs.extend(bits(b, wb));
        let out = m.evaluate(&inputs).unwrap();
        prop_assert_eq!(value(&out), a * b, "{} * {}", a, b);
    }

    #[test]
    fn popcount_counts(width in 1usize..=24, v in any::<u32>()) {
        let v = u128::from(v) & ((1 << width) - 1);
        let pc = adder::popcount(width).unwrap();
        let out = pc.evaluate(&bits(v, width)).unwrap();
        prop_assert_eq!(value(&out), u128::from(v.count_ones()));
    }

    #[test]
    fn parity_forms_agree_with_reference(width in 2usize..=24, fanin in 2usize..=4, v in any::<u32>()) {
        let v = u128::from(v) & ((1 << width) - 1);
        let expect = (v.count_ones() % 2) == 1;
        let tree = parity::parity_tree(width, fanin).unwrap();
        prop_assert_eq!(tree.evaluate(&bits(v, width)).unwrap(), vec![expect]);
        let chain = parity::parity_chain(width).unwrap();
        prop_assert_eq!(chain.evaluate(&bits(v, width)).unwrap(), vec![expect]);
    }

    #[test]
    fn comparators_compare(width in 1usize..=16, a in any::<u32>(), b in any::<u32>()) {
        let a = u128::from(a) & ((1 << width) - 1);
        let b = u128::from(b) & ((1 << width) - 1);
        let mut inputs = bits(a, width);
        inputs.extend(bits(b, width));
        let eq = comparator::equal(width).unwrap().evaluate(&inputs).unwrap();
        prop_assert_eq!(eq, vec![a == b]);
        let lt = comparator::less_than(width).unwrap().evaluate(&inputs).unwrap();
        prop_assert_eq!(lt, vec![a < b]);
    }

    #[test]
    fn threshold_comparator(width in 1usize..=12, v in any::<u16>(), t in any::<u16>()) {
        let v = u64::from(v) & ((1 << width) - 1);
        let t = u64::from(t) & ((1 << width) - 1);
        let ge = comparator::ge_const(width, t).unwrap();
        let out = ge.evaluate(&bits(u128::from(v), width)).unwrap();
        prop_assert_eq!(out, vec![v >= t]);
    }

    #[test]
    fn decoder_one_hot(width in 1usize..=6, v in any::<u8>(), enable in any::<bool>()) {
        let v = usize::from(v) & ((1 << width) - 1);
        let dec = decoder::binary_decoder(width, true).unwrap();
        let mut inputs = bits(v as u128, width);
        inputs.push(enable);
        let out = dec.evaluate(&inputs).unwrap();
        for (i, &o) in out.iter().enumerate() {
            prop_assert_eq!(o, enable && i == v, "line {} for v = {}", i, v);
        }
    }

    #[test]
    fn mux_selects(select_bits in 1usize..=4, data in any::<u16>(), sel in any::<u8>()) {
        let lanes = 1usize << select_bits;
        let sel = usize::from(sel) % lanes;
        let m = mux::mux_tree(select_bits).unwrap();
        // Input order: select bits then data lanes.
        let mut inputs = bits(sel as u128, select_bits);
        inputs.extend((0..lanes).map(|i| u32::from(data) >> i & 1 == 1));
        let out = m.evaluate(&inputs).unwrap();
        prop_assert_eq!(out, vec![u32::from(data) >> sel & 1 == 1]);
    }

    #[test]
    fn priority_encoder_picks_lowest(lines in 2usize..=12, v in any::<u16>()) {
        let v = usize::from(v) & ((1 << lines) - 1);
        let pe = priority::priority_encoder(lines).unwrap();
        let out = pe.evaluate(&bits(v as u128, lines)).unwrap();
        let expect_valid = v != 0;
        prop_assert_eq!(out[0], expect_valid);
        if expect_valid {
            let winner = v.trailing_zeros() as u128;
            let index_bits = out.len() - 1;
            let index = value(&out[1..]);
            prop_assert_eq!(index, winner, "v = {:0width$b}, bits {}", v, index_bits, width = lines);
        }
    }

    #[test]
    fn hamming_corrects_any_single_error(data_bits in 2usize..=16, data in any::<u16>(), flip in any::<usize>()) {
        let data = u128::from(data) & ((1 << data_bits) - 1);
        let corrector = ecc::hamming_corrector(data_bits).unwrap();
        let data_vec = bits(data, data_bits);
        let checks = ecc::encode_checks(&data_vec);
        let mut word = data_vec.clone();
        word.extend(&checks);
        // Flip one arbitrary position (or none when flip lands on len).
        let pos = flip % (word.len() + 1);
        if pos < word.len() {
            word[pos] = !word[pos];
        }
        let out = corrector.evaluate(&word).unwrap();
        prop_assert_eq!(value(&out), data, "flip at {}", pos);
    }

    #[test]
    fn alu_operations(width in 1usize..=8, a in any::<u16>(), b in any::<u16>(), cin in any::<bool>(), op in 0u8..4) {
        let mask = (1u128 << width) - 1;
        let a = u128::from(a) & mask;
        let b = u128::from(b) & mask;
        let alu = alu::alu(width).unwrap();
        let mut inputs = bits(a, width);
        inputs.extend(bits(b, width));
        inputs.push(cin);
        inputs.push(op & 1 == 1);
        inputs.push(op & 2 == 2);
        let out = alu.evaluate(&inputs).unwrap();
        let y = value(&out[..width]);
        let expect = match op {
            0 => (a + b + u128::from(cin)) & mask,
            1 => a & b,
            2 => a | b,
            _ => a ^ b,
        };
        prop_assert_eq!(y, expect, "op {} on {} and {}", op, a, b);
        if op == 0 {
            prop_assert_eq!(out[width], (a + b + u128::from(cin)) > mask);
        } else {
            prop_assert!(!out[width], "cout must be gated off for logic ops");
        }
    }
}
