//! Array multipliers — the structure of ISCAS `c6288`.
//!
//! The classic combinational array multiplier: an AND matrix of partial
//! products reduced row by row with carry-save full-adder rows. ISCAS'85
//! `c6288` *is* a 16×16 array multiplier (32 inputs, 32 outputs), so
//! [`array`]`(16, 16)` is a structurally faithful stand-in for it.
//!
//! The sensitivity of an `n×m` multiplier is `n + m`: pick `a` and `b` both
//! non-zero (e.g. all ones); flipping any bit of `a` changes the product by
//! `±2^i·b ≠ 0`, and symmetrically for `b`.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::adder::{full_adder, half_adder};
use crate::error::GenError;

/// An `wa × wb`-bit array multiplier.
///
/// Inputs (in order): `a0..a{wa-1}`, `b0..b{wb-1}`. Outputs:
/// `p0..p{wa+wb-1}` (the full product, LSB first).
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if either width is 0.
///
/// # Examples
///
/// ```
/// let mult = nanobound_gen::multiplier::array(4, 4)?;
/// // 6 * 7 = 42.
/// let mut inputs: Vec<bool> = (0..4).map(|i| 6 >> i & 1 == 1).collect();
/// inputs.extend((0..4).map(|i| 7 >> i & 1 == 1));
/// let out = mult.evaluate(&inputs).unwrap();
/// let p: u32 = out.iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
/// assert_eq!(p, 42);
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn array(wa: usize, wb: usize) -> Result<Netlist, GenError> {
    if wa == 0 {
        return Err(GenError::bad("wa", wa, "must be at least 1"));
    }
    if wb == 0 {
        return Err(GenError::bad("wb", wb, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("mult{wa}x{wb}"));
    let a: Vec<NodeId> = (0..wa).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..wb).map(|i| nl.add_input(format!("b{i}"))).collect();

    // Partial-product matrix: pp[j][i] = a_i AND b_j, weight i + j.
    let mut pp: Vec<Vec<NodeId>> = Vec::with_capacity(wb);
    for &bj in &b {
        let row: Vec<NodeId> = a
            .iter()
            .map(|&ai| nl.add_gate(GateKind::And, &[ai, bj]))
            .collect::<Result<_, _>>()?;
        pp.push(row);
    }

    // Row-by-row carry-propagate reduction (the classic array structure):
    // `acc` holds the running sum aligned so acc[i] has weight `row + i`.
    let mut products: Vec<NodeId> = Vec::with_capacity(wa + wb);
    let mut acc: Vec<NodeId> = pp[0].clone();
    products.push(acc[0]);
    for (row, row_pp) in pp.iter().enumerate().skip(1) {
        // Add row_pp (weight row..row+wa-1) to acc[1..] (weight row..).
        let mut next: Vec<NodeId> = Vec::with_capacity(wa);
        let mut carry: Option<NodeId> = None;
        for i in 0..wa {
            let high = acc.get(i + 1).copied();
            let (sum, c) = match (high, carry) {
                (Some(h), Some(cin)) => full_adder(&mut nl, row_pp[i], h, cin)?,
                (Some(h), None) => half_adder(&mut nl, row_pp[i], h)?,
                (None, Some(cin)) => half_adder(&mut nl, row_pp[i], cin)?,
                (None, None) => {
                    next.push(row_pp[i]);
                    continue;
                }
            };
            next.push(sum);
            carry = Some(c);
        }
        if let Some(c) = carry {
            next.push(c);
        }
        products.push(next[0]);
        acc = next;
        let _ = row;
    }
    products.extend(acc.into_iter().skip(1));
    products.truncate(wa + wb);
    // Pad (only possible for 1-bit operands) with constant zeros.
    while products.len() < wa + wb {
        let zero = nl.add_const(false);
        products.push(zero);
    }
    for (i, p) in products.iter().enumerate() {
        nl.add_output(format!("p{i}"), *p)?;
    }
    Ok(nl)
}

/// The analytically known sensitivity of an `wa × wb` multiplier
/// (`wa + wb`).
#[must_use]
pub fn sensitivity(wa: usize, wb: usize) -> u32 {
    (wa + wb) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_mult(nl: &Netlist, wa: usize, wb: usize, a: u64, b: u64) -> u64 {
        let mut inputs: Vec<bool> = (0..wa).map(|i| a >> i & 1 == 1).collect();
        inputs.extend((0..wb).map(|i| b >> i & 1 == 1));
        let out = nl.evaluate(&inputs).unwrap();
        let mut p = 0u64;
        for (i, &bit) in out.iter().enumerate() {
            if bit {
                p |= 1 << i;
            }
        }
        p
    }

    #[test]
    fn multiplies_exhaustively_4x4() {
        let nl = array(4, 4).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(eval_mult(&nl, 4, 4, a, b), a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn multiplies_asymmetric_3x5() {
        let nl = array(3, 5).unwrap();
        for a in 0u64..8 {
            for b in 0u64..32 {
                assert_eq!(eval_mult(&nl, 3, 5, a, b), a * b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn one_bit_multiplier_is_and() {
        let nl = array(1, 1).unwrap();
        assert_eq!(nl.output_count(), 2);
        assert_eq!(eval_mult(&nl, 1, 1, 1, 1), 1);
        assert_eq!(eval_mult(&nl, 1, 1, 1, 0), 0);
    }

    #[test]
    fn sixteen_bit_interface_matches_c6288() {
        let nl = array(16, 16).unwrap();
        assert_eq!(nl.input_count(), 32);
        assert_eq!(nl.output_count(), 32);
        // Spot checks.
        assert_eq!(eval_mult(&nl, 16, 16, 65535, 65535), 65535u64 * 65535);
        assert_eq!(eval_mult(&nl, 16, 16, 12345, 54321), 12345u64 * 54321);
        assert_eq!(eval_mult(&nl, 16, 16, 0, 54321), 0);
    }

    #[test]
    fn rejects_zero_widths() {
        assert!(array(0, 4).is_err());
        assert!(array(4, 0).is_err());
    }

    #[test]
    fn sensitivity_value() {
        assert_eq!(sensitivity(16, 16), 32);
    }
}
