//! A small multi-function ALU — the circuit class of ISCAS `c880`.
//!
//! `c880` is documented as an 8-bit ALU; this generator produces an
//! arithmetic/logic unit with the same flavour: a ripple adder datapath,
//! bitwise logic ops and an output mux, mixing XOR-rich arithmetic with
//! AND/OR control structures.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::adder::full_adder;
use crate::error::GenError;
use crate::mux::mux2;

/// A `width`-bit 4-operation ALU.
///
/// Inputs (in order): `a0..a{w-1}`, `b0..b{w-1}`, `cin`, `op0`, `op1`.
/// Outputs: `y0..y{w-1}`, `cout`.
///
/// | `op1 op0` | operation      |
/// |-----------|----------------|
/// | `00`      | `a + b + cin`  |
/// | `01`      | `a AND b`      |
/// | `10`      | `a OR b`       |
/// | `11`      | `a XOR b`      |
///
/// `cout` is the adder carry, gated to 0 for the logic operations.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
pub fn alu(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("alu{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");
    let op0 = nl.add_input("op0");
    let op1 = nl.add_input("op1");

    // Datapath: adder plus bitwise units.
    let mut carry = cin;
    let mut add_bits = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = full_adder(&mut nl, a[i], b[i], carry)?;
        add_bits.push(s);
        carry = c;
    }
    let and_bits: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::And, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let or_bits: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Or, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let xor_bits: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Xor, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;

    // Output select: two mux levels per bit.
    for i in 0..width {
        let low = mux2(&mut nl, op0, add_bits[i], and_bits[i])?; // op1 = 0
        let high = mux2(&mut nl, op0, or_bits[i], xor_bits[i])?; // op1 = 1
        let y = mux2(&mut nl, op1, low, high)?;
        nl.add_output(format!("y{i}"), y)?;
    }
    // cout only meaningful for the add op: cout & !op0 & !op1.
    let nop0 = nl.add_gate(GateKind::Not, &[op0])?;
    let nop1 = nl.add_gate(GateKind::Not, &[op1])?;
    let cout = nl.add_gate(GateKind::And, &[carry, nop0, nop1])?;
    nl.add_output("cout", cout)?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(nl: &Netlist, width: usize, a: u64, b: u64, cin: bool, op: u8) -> (u64, bool) {
        let mut inputs: Vec<bool> = (0..width).map(|i| a >> i & 1 == 1).collect();
        inputs.extend((0..width).map(|i| b >> i & 1 == 1));
        inputs.push(cin);
        inputs.push(op & 1 == 1);
        inputs.push(op & 2 == 2);
        let out = nl.evaluate(&inputs).unwrap();
        let mut y = 0u64;
        for (i, &bit) in out[..width].iter().enumerate() {
            if bit {
                y |= 1 << i;
            }
        }
        (y, out[width])
    }

    #[test]
    fn all_ops_exhaustive_3bit() {
        let nl = alu(3).unwrap();
        let mask = 0x7u64;
        for a in 0u64..8 {
            for b in 0u64..8 {
                for cin in [false, true] {
                    let (add, cout) = eval(&nl, 3, a, b, cin, 0);
                    assert_eq!(add, (a + b + u64::from(cin)) & mask);
                    assert_eq!(cout, a + b + u64::from(cin) > mask);
                    assert_eq!(eval(&nl, 3, a, b, cin, 1), (a & b, false));
                    assert_eq!(eval(&nl, 3, a, b, cin, 2), (a | b, false));
                    assert_eq!(eval(&nl, 3, a, b, cin, 3), (a ^ b, false));
                }
            }
        }
    }

    #[test]
    fn interface_width() {
        let nl = alu(8).unwrap();
        assert_eq!(nl.input_count(), 19);
        assert_eq!(nl.output_count(), 9);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(alu(0).is_err());
    }
}
