//! Binary decoders — deep AND planes with very low output activity.
//!
//! Under uniform random inputs each of the `2^n` outputs of an `n`-input
//! decoder is 1 with probability `2^-n`, giving a per-gate switching
//! activity around `2^{1-n}` — the low-`sw0` regime in which the paper's
//! energy bound rises steeply (the `2ε(1-ε)/sw0` term of Corollary 2).

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// An `width → 2^width` binary decoder with optional enable.
///
/// Inputs: `x0..x{w-1}` (LSB first), then `en` if `with_enable`. Outputs:
/// `y0..y{2^w-1}`, with `y[i] = 1` iff the input encodes `i` (and `en` is
/// high when present).
///
/// The sensitivity is `width` plus 1 for the enable: flipping any address
/// bit always moves the active output, changing two outputs; flipping `en`
/// toggles the active output.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width` is 0 or greater than 12
/// (4096 outputs is already far beyond anything the experiments need).
pub fn binary_decoder(width: usize, with_enable: bool) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    if width > 12 {
        return Err(GenError::bad("width", width, "must be at most 12"));
    }
    let mut nl = Netlist::new(format!("dec{width}_{}", 1usize << width));
    let x: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
    let en = with_enable.then(|| nl.add_input("en"));
    let nx: Vec<NodeId> = x
        .iter()
        .map(|&xi| nl.add_gate(GateKind::Not, &[xi]))
        .collect::<Result<_, _>>()?;
    for code in 0..(1usize << width) {
        let mut literals: Vec<NodeId> = (0..width)
            .map(|i| if code >> i & 1 == 1 { x[i] } else { nx[i] })
            .collect();
        if let Some(en) = en {
            literals.push(en);
        }
        let y = if literals.len() == 1 {
            literals[0]
        } else {
            nl.add_gate(GateKind::And, &literals)?
        };
        nl.add_output(format!("y{code}"), y)?;
    }
    Ok(nl)
}

/// The analytically known sensitivity of the decoder (`width`, plus one if
/// the enable input is present).
#[must_use]
pub fn sensitivity(width: usize, with_enable: bool) -> u32 {
    (width + usize::from(with_enable)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_exhaustively() {
        for width in [1usize, 2, 4] {
            let nl = binary_decoder(width, false).unwrap();
            for code in 0u64..(1 << width) {
                let inputs: Vec<bool> = (0..width).map(|i| code >> i & 1 == 1).collect();
                let out = nl.evaluate(&inputs).unwrap();
                for (i, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, i as u64 == code, "w={width} code={code} out={i}");
                }
            }
        }
    }

    #[test]
    fn enable_gates_all_outputs() {
        let nl = binary_decoder(2, true).unwrap();
        let out = nl.evaluate(&[true, false, false]).unwrap(); // en = 0
        assert!(out.iter().all(|&b| !b));
        let out = nl.evaluate(&[true, false, true]).unwrap(); // en = 1, code 1
        assert_eq!(out, vec![false, true, false, false]);
    }

    #[test]
    fn parameter_limits() {
        assert!(binary_decoder(0, false).is_err());
        assert!(binary_decoder(13, false).is_err());
        assert!(binary_decoder(12, false).is_ok());
    }

    #[test]
    fn structure() {
        let nl = binary_decoder(4, false).unwrap();
        assert_eq!(nl.output_count(), 16);
        assert_eq!(nl.gate_count(), 4 + 16); // 4 inverters + 16 AND4
    }
}
