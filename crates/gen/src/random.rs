//! Seeded random DAG circuits for fuzzing and property-based tests.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// Configuration for [`random_dag`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomDagConfig {
    /// Number of primary inputs (≥ 1).
    pub inputs: usize,
    /// Number of gates to generate (≥ 1).
    pub gates: usize,
    /// Maximum gate fanin (≥ 2).
    pub max_fanin: usize,
    /// Number of primary outputs (≥ 1); drawn from the last gates so most
    /// of the DAG is live.
    pub outputs: usize,
    /// RNG seed; equal seeds produce identical circuits.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            inputs: 8,
            gates: 64,
            max_fanin: 3,
            outputs: 4,
            seed: 0,
        }
    }
}

/// Generates a random combinational DAG.
///
/// Gate kinds are drawn uniformly from the multi-input library
/// (AND/NAND/OR/NOR/XOR/XNOR) plus inverters; fanins are drawn from all
/// previously created nodes with a bias towards recent ones, which keeps
/// the logic depth meaningful.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] for zero sizes or `max_fanin < 2`.
///
/// # Examples
///
/// ```
/// use nanobound_gen::random::{random_dag, RandomDagConfig};
///
/// let config = RandomDagConfig { seed: 7, ..RandomDagConfig::default() };
/// let a = random_dag(&config)?;
/// let b = random_dag(&config)?;
/// assert_eq!(a, b); // deterministic in the seed
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn random_dag(config: &RandomDagConfig) -> Result<Netlist, GenError> {
    if config.inputs == 0 {
        return Err(GenError::bad("inputs", config.inputs, "must be at least 1"));
    }
    if config.gates == 0 {
        return Err(GenError::bad("gates", config.gates, "must be at least 1"));
    }
    if config.max_fanin < 2 {
        return Err(GenError::bad(
            "max_fanin",
            config.max_fanin,
            "must be at least 2",
        ));
    }
    if config.outputs == 0 {
        return Err(GenError::bad(
            "outputs",
            config.outputs,
            "must be at least 1",
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nl = Netlist::new(format!("rand_s{}", config.seed));
    let mut pool: Vec<NodeId> = (0..config.inputs)
        .map(|i| nl.add_input(format!("x{i}")))
        .collect();

    const KINDS: [GateKind; 7] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ];
    for _ in 0..config.gates {
        let kind = *KINDS.choose(&mut rng).expect("nonempty");
        let fanin_count = if kind == GateKind::Not {
            1
        } else {
            rng.random_range(2..=config.max_fanin)
        };
        let mut fanins = Vec::with_capacity(fanin_count);
        for _ in 0..fanin_count {
            // Bias towards recent nodes: square a uniform draw.
            let u: f64 = rng.random::<f64>();
            let idx = ((1.0 - u * u) * pool.len() as f64) as usize;
            fanins.push(pool[idx.min(pool.len() - 1)]);
        }
        // NOT with duplicate fanins is fine (arity 1); multi-input gates
        // with all-identical fanins degenerate, so nudge one entry.
        if fanin_count >= 2 && fanins.iter().all(|&f| f == fanins[0]) {
            let alt = pool[rng.random_range(0..pool.len())];
            fanins[0] = alt;
        }
        pool.push(nl.add_gate(kind, &fanins)?);
    }
    let gate_pool = &pool[config.inputs..];
    for i in 0..config.outputs {
        let pick = gate_pool[gate_pool.len() - 1 - (i % gate_pool.len())];
        nl.add_output(format!("y{i}"), pick)?;
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobound_logic::CircuitStats;

    #[test]
    fn deterministic_in_seed() {
        let c = RandomDagConfig {
            seed: 42,
            ..RandomDagConfig::default()
        };
        assert_eq!(random_dag(&c).unwrap(), random_dag(&c).unwrap());
        let c2 = RandomDagConfig {
            seed: 43,
            ..RandomDagConfig::default()
        };
        assert_ne!(random_dag(&c).unwrap(), random_dag(&c2).unwrap());
    }

    #[test]
    fn respects_sizes() {
        let c = RandomDagConfig {
            inputs: 5,
            gates: 40,
            max_fanin: 4,
            outputs: 3,
            seed: 1,
        };
        let nl = random_dag(&c).unwrap();
        assert_eq!(nl.input_count(), 5);
        assert_eq!(nl.output_count(), 3);
        assert_eq!(nl.node_count(), 45);
        assert!(CircuitStats::of(&nl).max_fanin <= 4);
        nl.validate().unwrap();
    }

    #[test]
    fn evaluates_without_panic() {
        let c = RandomDagConfig::default();
        let nl = random_dag(&c).unwrap();
        let inputs = vec![true; nl.input_count()];
        let out = nl.evaluate(&inputs).unwrap();
        assert_eq!(out.len(), nl.output_count());
    }

    #[test]
    fn bad_parameters_rejected() {
        let base = RandomDagConfig::default();
        assert!(random_dag(&RandomDagConfig {
            inputs: 0,
            ..base.clone()
        })
        .is_err());
        assert!(random_dag(&RandomDagConfig {
            gates: 0,
            ..base.clone()
        })
        .is_err());
        assert!(random_dag(&RandomDagConfig {
            max_fanin: 1,
            ..base.clone()
        })
        .is_err());
        assert!(random_dag(&RandomDagConfig { outputs: 0, ..base }).is_err());
    }
}
