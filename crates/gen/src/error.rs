//! Generator parameter errors.

use std::error::Error;
use std::fmt;

use nanobound_logic::LogicError;

/// Errors produced by circuit generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenError {
    /// A width/size parameter was outside the supported range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        got: usize,
        /// Human-readable constraint, e.g. "must be at least 1".
        requirement: &'static str,
    },
    /// Netlist construction failed (generator bug; should not happen for
    /// validated parameters).
    Logic(LogicError),
}

impl GenError {
    pub(crate) fn bad(name: &'static str, got: usize, requirement: &'static str) -> Self {
        GenError::BadParameter {
            name,
            got,
            requirement,
        }
    }
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::BadParameter {
                name,
                got,
                requirement,
            } => {
                write!(f, "parameter `{name}` = {got} {requirement}")
            }
            GenError::Logic(e) => write!(f, "netlist construction failed: {e}"),
        }
    }
}

impl Error for GenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenError::Logic(e) => Some(e),
            GenError::BadParameter { .. } => None,
        }
    }
}

impl From<LogicError> for GenError {
    fn from(e: LogicError) -> Self {
        GenError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = GenError::bad("width", 0, "must be at least 1");
        assert!(e.to_string().contains("width"));
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn logic_source_preserved() {
        let e: GenError = LogicError::NoOutputs.into();
        assert!(Error::source(&e).is_some());
    }
}
