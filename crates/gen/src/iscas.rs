//! The verbatim ISCAS'85 `c17` plus functional analogs of the larger
//! ISCAS'85 benchmarks.
//!
//! The original ISCAS'85 netlist files are not redistributable, so — per
//! the substitution table in `DESIGN.md` — every benchmark larger than
//! `c17` is regenerated from its *documented high-level function*. The
//! bounds of the paper consume only aggregate circuit parameters (size,
//! depth, fanin, sensitivity, switching activity), and those parameters
//! are determined by the function class (XOR-dominated, arithmetic,
//! control/priority), which the analogs preserve:
//!
//! | ISCAS'85 | Documented function | Analog here |
//! |----------|--------------------|-------------|
//! | `c17`    | 6-NAND toy         | [`c17`] (verbatim public netlist) |
//! | `c432`   | 36-input priority/interrupt controller | [`c432_analog`] |
//! | `c499`   | 32-bit single-error corrector (XOR form) | [`c499_analog`] |
//! | `c880`   | 8-bit ALU          | [`c880_analog`] |
//! | `c1355`  | `c499` with XORs expanded to NANDs | [`c1355_analog`] |
//! | `c1908`  | 16-bit SEC/DED corrector, NAND form | [`c1908_analog`] |
//! | `c6288`  | 16×16 array multiplier | [`c6288_analog`] |
//! | `c7552`  | 32-bit adder/comparator | [`c7552_analog`] |

use nanobound_logic::{GateKind, Netlist, Node, NodeId};

use crate::error::GenError;
use crate::{adder, alu, comparator, ecc, multiplier, priority};

/// The verbatim ISCAS'85 `c17` netlist: 5 inputs, 2 outputs, 6 NAND2
/// gates. This tiny benchmark is in the public domain and is reproduced
/// gate-for-gate (net numbers from the original `.bench` file appear in
/// the signal names).
///
/// # Examples
///
/// ```
/// let c17 = nanobound_gen::iscas::c17();
/// assert_eq!(c17.input_count(), 5);
/// assert_eq!(c17.output_count(), 2);
/// assert_eq!(c17.gate_count(), 6);
/// ```
#[must_use]
pub fn c17() -> Netlist {
    let mut nl = Netlist::new("c17");
    let n1 = nl.add_input("N1");
    let n2 = nl.add_input("N2");
    let n3 = nl.add_input("N3");
    let n6 = nl.add_input("N6");
    let n7 = nl.add_input("N7");
    // Gate list exactly as in the published benchmark.
    let n10 = nl
        .add_gate(GateKind::Nand, &[n1, n3])
        .expect("valid fanins");
    let n11 = nl
        .add_gate(GateKind::Nand, &[n3, n6])
        .expect("valid fanins");
    let n16 = nl
        .add_gate(GateKind::Nand, &[n2, n11])
        .expect("valid fanins");
    let n19 = nl
        .add_gate(GateKind::Nand, &[n11, n7])
        .expect("valid fanins");
    let n22 = nl
        .add_gate(GateKind::Nand, &[n10, n16])
        .expect("valid fanins");
    let n23 = nl
        .add_gate(GateKind::Nand, &[n16, n19])
        .expect("valid fanins");
    nl.add_output("N22", n22).expect("fresh output name");
    nl.add_output("N23", n23).expect("fresh output name");
    nl
}

/// Analog of `c432`: a 4-group × 9-line priority/interrupt controller
/// (40 inputs), the same function family as the original 36-input
/// controller. Control-dominated, low switching activity.
///
/// # Errors
///
/// Never fails for these fixed parameters; the `Result` is kept so all
/// analogs share a signature.
pub fn c432_analog() -> Result<Netlist, GenError> {
    let mut nl = priority::interrupt_controller(4, 9)?;
    nl.set_name("c432a");
    Ok(nl)
}

/// Analog of `c499`: a 32-bit Hamming single-error corrector — a 38-input,
/// 32-output XOR-dominated network (the original is a 41-input SEC circuit
/// in XOR form). High switching activity, high sensitivity.
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c499_analog() -> Result<Netlist, GenError> {
    let mut nl = ecc::hamming_corrector(32)?;
    nl.set_name("c499a");
    Ok(nl)
}

/// Analog of `c880`: an 8-bit 4-operation ALU (adder datapath, bitwise
/// units, output mux) — mixed arithmetic/control structure.
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c880_analog() -> Result<Netlist, GenError> {
    let mut nl = alu::alu(8)?;
    nl.set_name("c880a");
    Ok(nl)
}

/// Analog of `c1355`: functionally identical to [`c499_analog`] but with
/// every XOR/XNOR expanded into NAND structures, exactly how the original
/// `c1355` relates to `c499`. Same function, ~4× the gate count.
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c1355_analog() -> Result<Netlist, GenError> {
    let mut nl = expand_xor_to_nand(&c499_analog()?)?;
    nl.set_name("c1355a");
    Ok(nl)
}

/// Analog of `c1908`: a 16-bit SEC-DED corrector
/// ([`ecc::sec_ded`]) with every XOR expanded to NAND logic — the
/// original is documented as a 16-bit single-error-correcting /
/// double-error-detecting circuit in NAND-dominated form (~880 gates,
/// 33 inputs). The analog lands in the same structural class:
/// NAND-dominated parity cones plus a syndrome decoder, hundreds of
/// gates, 22 inputs. (An earlier revision shipped a 6-gate
/// detector-only stub under this name; BENCH entries before BENCH_6
/// misreport it.)
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c1908_analog() -> Result<Netlist, GenError> {
    let mut nl = expand_xor_to_nand(&ecc::sec_ded(16)?)?;
    nl.set_name("c1908a");
    Ok(nl)
}

/// Analog of `c6288`: a 16×16 array multiplier. The original `c6288` *is*
/// an array multiplier, so this analog is structurally faithful (a grid of
/// full/half adders), not merely functionally.
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c6288_analog() -> Result<Netlist, GenError> {
    let mut nl = multiplier::array(16, 16)?;
    nl.set_name("c6288a");
    Ok(nl)
}

/// Analog of `c7552`: a 32-bit adder/comparator. Shares its `a`/`b`
/// operand inputs between a ripple-carry adder, a magnitude comparator and
/// an equality comparator, mirroring the documented function of the
/// original.
///
/// # Errors
///
/// Never fails for these fixed parameters.
pub fn c7552_analog() -> Result<Netlist, GenError> {
    let width = 32;
    let mut nl = Netlist::new("c7552a");
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");

    let mut shared: Vec<NodeId> = a.clone();
    shared.extend(&b);
    let mut adder_inputs = shared.clone();
    adder_inputs.push(cin);
    let sum = nl.import(&adder::ripple_carry(width)?, &adder_inputs)?;
    for (i, &s) in sum.iter().enumerate().take(width) {
        nl.add_output(format!("s{i}"), s)?;
    }
    nl.add_output("cout", sum[width])?;

    let lt = nl.import(&comparator::less_than(width)?, &shared)?;
    nl.add_output("lt", lt[0])?;
    let eq = nl.import(&comparator::equal(width)?, &shared)?;
    nl.add_output("eq", eq[0])?;
    Ok(nl)
}

/// Rewrites every XOR/XNOR gate into 2-input NAND logic, leaving all other
/// gates untouched.
///
/// Multi-input parities are first chained into 2-input stages; each
/// 2-input XOR then becomes the classic 4-NAND network, and XNOR adds an
/// inverter. This is the transformation that historically produced
/// `c1355` from `c499`.
///
/// # Errors
///
/// Returns [`GenError::Logic`] only if the input netlist is malformed
/// (never for netlists built through [`Netlist`]'s checked API).
///
/// # Examples
///
/// ```
/// use nanobound_gen::{iscas, parity};
///
/// let tree = parity::parity_tree(8, 2)?;
/// let nand_form = iscas::expand_xor_to_nand(&tree)?;
/// assert!(nand_form.gate_count() > tree.gate_count());
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn expand_xor_to_nand(netlist: &Netlist) -> Result<Netlist, GenError> {
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<NodeId> = Vec::with_capacity(netlist.node_count());
    for id in netlist.node_ids() {
        let new_id = match netlist.node(id) {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Gate { kind, fanins } => {
                let mapped: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                match kind {
                    GateKind::Xor => nand_parity_chain(&mut out, &mapped, false)?,
                    GateKind::Xnor => nand_parity_chain(&mut out, &mapped, true)?,
                    other => out.add_gate(*other, &mapped)?,
                }
            }
        };
        map.push(new_id);
    }
    for o in netlist.outputs() {
        out.add_output(o.name.clone(), map[o.driver.index()])?;
    }
    Ok(out)
}

/// Chains `taps` into 2-input NAND-expanded XOR stages; `invert` selects
/// XNOR of the whole group.
fn nand_parity_chain(nl: &mut Netlist, taps: &[NodeId], invert: bool) -> Result<NodeId, GenError> {
    let mut acc = taps[0];
    for &t in &taps[1..] {
        acc = nand_xor2(nl, acc, t)?;
    }
    if invert {
        acc = nl.add_gate(GateKind::Not, &[acc])?;
    }
    Ok(acc)
}

/// The classic 4-NAND realization of `a ⊕ b`.
fn nand_xor2(nl: &mut Netlist, a: NodeId, b: NodeId) -> Result<NodeId, GenError> {
    let nab = nl.add_gate(GateKind::Nand, &[a, b])?;
    let na = nl.add_gate(GateKind::Nand, &[a, nab])?;
    let nb = nl.add_gate(GateKind::Nand, &[b, nab])?;
    Ok(nl.add_gate(GateKind::Nand, &[na, nb])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive equivalence check for small input counts.
    fn assert_equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.input_count(), b.input_count());
        let n = a.input_count();
        assert!(n <= 16, "exhaustive check only for small n");
        for v in 0..1u32 << n {
            let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(
                a.evaluate(&bits).unwrap(),
                b.evaluate(&bits).unwrap(),
                "differ on input {v:b}"
            );
        }
    }

    #[test]
    fn c17_truth_table() {
        // Reference: N22 = !(N10 & N16), with the published structure.
        let nl = c17();
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            let (n1, n2, n3, n6, n7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let n10 = !(n1 && n3);
            let n11 = !(n3 && n6);
            let n16 = !(n2 && n11);
            let n19 = !(n11 && n7);
            let expect = vec![!(n10 && n16), !(n16 && n19)];
            assert_eq!(nl.evaluate(&bits).unwrap(), expect, "input {v:05b}");
        }
    }

    #[test]
    fn analogs_have_documented_shapes() {
        let c432 = c432_analog().unwrap();
        assert_eq!(c432.input_count(), 40);
        let c499 = c499_analog().unwrap();
        assert_eq!(c499.input_count(), 38);
        assert_eq!(c499.output_count(), 32);
        let c880 = c880_analog().unwrap();
        assert_eq!(c880.input_count(), 19); // 8 + 8 + cin + 2 op bits
        let c1908 = c1908_analog().unwrap();
        assert_eq!(c1908.input_count(), 22); // 16 data + 5 checks + P
        assert_eq!(c1908.output_count(), 23);
        assert!(
            c1908.gate_count() >= 100,
            "c1908a must not regress to a stub: {} gates",
            c1908.gate_count()
        );
        for node in c1908.nodes() {
            assert!(!matches!(node.kind(), Some(GateKind::Xor | GateKind::Xnor)));
        }
        let c6288 = c6288_analog().unwrap();
        assert_eq!(c6288.input_count(), 32);
        assert_eq!(c6288.output_count(), 32);
        let c7552 = c7552_analog().unwrap();
        assert_eq!(c7552.input_count(), 65);
        assert_eq!(c7552.output_count(), 35);
    }

    #[test]
    fn c1355_is_c499_in_nand_form() {
        let c499 = c499_analog().unwrap();
        let c1355 = c1355_analog().unwrap();
        assert!(c1355.gate_count() > 2 * c499.gate_count());
        // No XOR/XNOR gates remain.
        for node in c1355.nodes() {
            assert!(!matches!(node.kind(), Some(GateKind::Xor | GateKind::Xnor)));
        }
    }

    #[test]
    fn xor_expansion_preserves_function() {
        let tree = crate::parity::parity_tree(6, 3).unwrap();
        let expanded = expand_xor_to_nand(&tree).unwrap();
        assert_equivalent(&tree, &expanded);
    }

    #[test]
    fn xnor_expansion_preserves_function() {
        let eq = crate::comparator::equal(3).unwrap();
        let expanded = expand_xor_to_nand(&eq).unwrap();
        assert_equivalent(&eq, &expanded);
    }

    #[test]
    fn c7552_adds_and_compares() {
        let nl = c7552_analog().unwrap();
        // a = 5, b = 9, cin = 0 -> sum 14, lt = 1, eq = 0.
        let mut inputs = vec![false; 65];
        inputs[0] = true; // a0
        inputs[2] = true; // a2
        inputs[32] = true; // b0
        inputs[35] = true; // b3
        let out = nl.evaluate(&inputs).unwrap();
        let sum: u64 = out[..32]
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum();
        assert_eq!(sum, 14);
        assert!(!out[32]); // cout
        assert!(out[33]); // lt
        assert!(!out[34]); // eq
    }
}
