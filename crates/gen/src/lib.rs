//! Parameterized combinational circuit generators.
//!
//! The paper evaluates its bounds on "a subset of ISCAS'85 benchmarks and
//! some computer arithmetic circuits (ripple-carry adders and array
//! multipliers) with various bitwidths" (Section 6). This crate generates
//! those circuits — and functional analogs of the ISCAS'85 designs, whose
//! original netlists are not redistributable — from first principles:
//!
//! - [`parity`] — parity trees and chains (the functions for which the
//!   paper's bounds are tight);
//! - [`adder`] — ripple-carry and carry-lookahead adders, popcount;
//! - [`multiplier`] — array multipliers (the structure of ISCAS `c6288`);
//! - [`comparator`] — equality, magnitude and constant-threshold compares;
//! - [`mux`] / [`decoder`] — selection and decode logic (low-activity
//!   control structures);
//! - [`alu`] — a small multi-function ALU (the class of `c880`);
//! - [`ecc`] — Hamming single-error correctors and error detectors (the
//!   class of `c499`/`c1355`/`c1908`);
//! - [`priority`] — priority encoders (the class of `c432`);
//! - [`random`] — seeded random DAGs for fuzzing and property tests;
//! - [`iscas`] — the verbatim `c17` plus the named ISCAS'85 analogs;
//! - [`suite`] — the benchmark suite used by the experiments crate.
//!
//! Every generator documents its analytically-known Boolean sensitivity
//! where one exists; [`suite::Benchmark`] carries it as a hint so the
//! experiment pipeline can skip Monte-Carlo estimation.
//!
//! # Examples
//!
//! ```
//! use nanobound_gen::adder;
//!
//! # fn main() -> Result<(), nanobound_gen::GenError> {
//! let rca = adder::ripple_carry(8)?;
//! assert_eq!(rca.input_count(), 17); // a[8] + b[8] + cin
//! assert_eq!(rca.output_count(), 9); // sum[8] + cout
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Generator code walks several parallel NodeId arrays per bit position;
// explicit index loops keep the hardware structure visible, so the
// iterator-style rewrite clippy suggests would obscure intent.
#![allow(clippy::needless_range_loop)]

pub mod adder;
pub mod alu;
pub mod comparator;
pub mod decoder;
pub mod ecc;
mod error;
pub mod iscas;
pub mod multiplier;
pub mod mux;
pub mod parity;
pub mod priority;
pub mod random;
pub mod suite;

pub use error::GenError;
pub use suite::{standard_suite, Benchmark, CircuitClass};
