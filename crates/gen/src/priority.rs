//! Priority encoders — the circuit class of ISCAS `c432` (a 36-input
//! priority/interrupt controller).
//!
//! Priority logic is built from long AND/OR inhibition chains whose
//! internal signal probabilities are strongly skewed, producing the
//! low-switching-activity regime where the paper's energy bound is most
//! pronounced.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// An `lines`-input priority encoder.
///
/// Inputs: `r0..r{n-1}` (request lines; `r0` has the *highest* priority).
/// Outputs: `valid` (any request active) and `i0..i{b-1}` — the index of
/// the highest-priority active request, LSB first, `b = ceil(log2 n)`.
///
/// The sensitivity is `lines`: from the all-zero state, flipping any
/// single request changes `valid` (and usually the index).
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `lines < 2` or `lines > 4096`.
///
/// # Examples
///
/// ```
/// let pe = nanobound_gen::priority::priority_encoder(4)?;
/// // r2 and r3 active: highest priority active line is r2 -> index 2.
/// let out = pe.evaluate(&[false, false, true, true]).unwrap();
/// assert_eq!(out, vec![true, false, true]); // valid, i0 = 0, i1 = 1
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn priority_encoder(lines: usize) -> Result<Netlist, GenError> {
    if lines < 2 {
        return Err(GenError::bad("lines", lines, "must be at least 2"));
    }
    if lines > 4096 {
        return Err(GenError::bad("lines", lines, "must be at most 4096"));
    }
    let index_bits = usize::BITS as usize - (lines - 1).leading_zeros() as usize;
    let mut nl = Netlist::new(format!("prio{lines}"));
    let r: Vec<NodeId> = (0..lines).map(|i| nl.add_input(format!("r{i}"))).collect();

    // grant[i] = r[i] & !r[i-1] & ... & !r[0] — the inhibition chain.
    let mut grants = Vec::with_capacity(lines);
    grants.push(r[0]);
    let mut none_above = nl.add_gate(GateKind::Not, &[r[0]])?;
    for i in 1..lines {
        grants.push(nl.add_gate(GateKind::And, &[r[i], none_above])?);
        if i + 1 < lines {
            let ni = nl.add_gate(GateKind::Not, &[r[i]])?;
            none_above = nl.add_gate(GateKind::And, &[none_above, ni])?;
        }
    }

    let valid = nl.add_gate(GateKind::Or, &r)?;
    nl.add_output("valid", valid)?;
    for bit in 0..index_bits {
        let taps: Vec<NodeId> = (0..lines)
            .filter(|i| i >> bit & 1 == 1)
            .map(|i| grants[i])
            .collect();
        let idx = match taps.len() {
            0 => nl.add_const(false),
            1 => taps[0],
            _ => nl.add_gate(GateKind::Or, &taps)?,
        };
        nl.add_output(format!("i{bit}"), idx)?;
    }
    Ok(nl)
}

/// A grouped interrupt controller in the style of `c432`: `groups`
/// request groups of `width` lines each, with per-group enables, a global
/// priority encode and per-group grant outputs.
///
/// Inputs: `r{g}_{i}` for each group `g` and line `i`, then `en0..` per
/// group. Outputs: `valid`, the encoded line index (within the winning
/// group), and one `grant{g}` per group. With `groups = 4, width = 9`
/// this is a 40-input controller of the same family as the 36-input
/// `c432`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `groups < 2` or `width < 2`.
pub fn interrupt_controller(groups: usize, width: usize) -> Result<Netlist, GenError> {
    if groups < 2 {
        return Err(GenError::bad("groups", groups, "must be at least 2"));
    }
    if width < 2 {
        return Err(GenError::bad("width", width, "must be at least 2"));
    }
    let mut nl = Netlist::new(format!("intctl{groups}x{width}"));
    let mut req: Vec<Vec<NodeId>> = Vec::with_capacity(groups);
    for g in 0..groups {
        req.push(
            (0..width)
                .map(|i| nl.add_input(format!("r{g}_{i}")))
                .collect(),
        );
    }
    let en: Vec<NodeId> = (0..groups)
        .map(|g| nl.add_input(format!("en{g}")))
        .collect();

    // Masked per-group request lines and group-active signals.
    let mut masked: Vec<Vec<NodeId>> = Vec::with_capacity(groups);
    let mut active: Vec<NodeId> = Vec::with_capacity(groups);
    for g in 0..groups {
        let lines: Vec<NodeId> = req[g]
            .iter()
            .map(|&r| nl.add_gate(GateKind::And, &[r, en[g]]))
            .collect::<Result<_, _>>()?;
        active.push(nl.add_gate(GateKind::Or, &lines)?);
        masked.push(lines);
    }

    // Group-level priority (group 0 wins ties).
    let mut group_grant = Vec::with_capacity(groups);
    group_grant.push(active[0]);
    let mut none_above = nl.add_gate(GateKind::Not, &[active[0]])?;
    for g in 1..groups {
        group_grant.push(nl.add_gate(GateKind::And, &[active[g], none_above])?);
        if g + 1 < groups {
            let ng = nl.add_gate(GateKind::Not, &[active[g]])?;
            none_above = nl.add_gate(GateKind::And, &[none_above, ng])?;
        }
    }

    // Line selected within the winning group: OR over groups of
    // (group_grant & line-priority-grant).
    let index_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut line_grants: Vec<Vec<NodeId>> = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut grants = Vec::with_capacity(width);
        grants.push(masked[g][0]);
        let mut clear = nl.add_gate(GateKind::Not, &[masked[g][0]])?;
        for i in 1..width {
            grants.push(nl.add_gate(GateKind::And, &[masked[g][i], clear])?);
            if i + 1 < width {
                let ni = nl.add_gate(GateKind::Not, &[masked[g][i]])?;
                clear = nl.add_gate(GateKind::And, &[clear, ni])?;
            }
        }
        line_grants.push(grants);
    }

    let valid = nl.add_gate(GateKind::Or, &active)?;
    nl.add_output("valid", valid)?;
    for bit in 0..index_bits {
        let mut taps = Vec::new();
        for g in 0..groups {
            for i in (0..width).filter(|i| i >> bit & 1 == 1) {
                taps.push(nl.add_gate(GateKind::And, &[group_grant[g], line_grants[g][i]])?);
            }
        }
        let idx = match taps.len() {
            0 => nl.add_const(false),
            1 => taps[0],
            _ => nl.add_gate(GateKind::Or, &taps)?,
        };
        nl.add_output(format!("i{bit}"), idx)?;
    }
    for g in 0..groups {
        nl.add_output(format!("grant{g}"), group_grant[g])?;
    }
    Ok(nl)
}

/// The analytically known sensitivity of the plain priority encoder
/// (`lines` — from the all-idle state every request flip changes the
/// outputs).
#[must_use]
pub fn sensitivity(lines: usize) -> u32 {
    lines as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_exhaustive() {
        for lines in [2usize, 3, 4, 6] {
            let nl = priority_encoder(lines).unwrap();
            let index_bits = usize::BITS as usize - (lines - 1).leading_zeros() as usize;
            for bits in 0u64..(1 << lines) {
                let inputs: Vec<bool> = (0..lines).map(|i| bits >> i & 1 == 1).collect();
                let out = nl.evaluate(&inputs).unwrap();
                let expect_valid = bits != 0;
                assert_eq!(out[0], expect_valid, "lines={lines} bits={bits:b}");
                if expect_valid {
                    let winner = bits.trailing_zeros() as usize;
                    for b in 0..index_bits {
                        assert_eq!(
                            out[1 + b],
                            winner >> b & 1 == 1,
                            "lines={lines} bits={bits:b} bit {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn controller_basics() {
        let nl = interrupt_controller(2, 3).unwrap();
        // Inputs: r0_0..r0_2, r1_0..r1_2, en0, en1.
        // Group 1 requests line 2, but only group 1 enabled.
        let out = nl
            .evaluate(&[true, false, false, false, false, true, false, true])
            .unwrap();
        // valid, i0, i1, grant0, grant1
        assert!(out[0], "valid");
        assert!(!out[3], "grant0 (disabled group)");
        assert!(out[4], "grant1");
        assert_eq!((out[1], out[2]), (false, true), "line index 2");
    }

    #[test]
    fn controller_group_priority() {
        let nl = interrupt_controller(2, 2).unwrap();
        // Both groups request line 0, both enabled: group 0 wins.
        let out = nl
            .evaluate(&[true, false, true, false, true, true])
            .unwrap();
        assert!(out[0]);
        assert!(out[2], "grant0");
        assert!(!out[3], "grant1");
    }

    #[test]
    fn idle_controller_reports_invalid() {
        let nl = interrupt_controller(2, 2).unwrap();
        let out = nl.evaluate(&[false; 6]).unwrap();
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    fn c432_class_interface() {
        let nl = interrupt_controller(4, 9).unwrap();
        assert_eq!(nl.input_count(), 40);
        // valid + 4 index bits + 4 grants.
        assert_eq!(nl.output_count(), 9);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(priority_encoder(1).is_err());
        assert!(interrupt_controller(1, 4).is_err());
        assert!(interrupt_controller(4, 1).is_err());
    }
}
