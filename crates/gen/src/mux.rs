//! Multiplexer trees — selection logic with low, skewed switching
//! activity.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// Builds a 2:1 mux over existing nodes: `sel ? hi : lo`.
pub(crate) fn mux2(
    nl: &mut Netlist,
    sel: NodeId,
    lo: NodeId,
    hi: NodeId,
) -> Result<NodeId, GenError> {
    let nsel = nl.add_gate(GateKind::Not, &[sel])?;
    let a = nl.add_gate(GateKind::And, &[nsel, lo])?;
    let b = nl.add_gate(GateKind::And, &[sel, hi])?;
    Ok(nl.add_gate(GateKind::Or, &[a, b])?)
}

/// A `2^select_bits : 1` multiplexer tree.
///
/// Inputs (in order): `s0..s{k-1}` (LSB first), then `d0..d{2^k-1}`.
/// Output: `y = d[s]`.
///
/// The sensitivity is `select_bits + 1` (choose data inputs so every select
/// flip lands on a differing neighbour; the selected data line is always
/// sensitive).
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `select_bits` is 0 or greater
/// than 16.
///
/// # Examples
///
/// ```
/// let mux = nanobound_gen::mux::mux_tree(2)?;
/// // Select line 2 (s = 10b), data = 0100b.
/// let out = mux.evaluate(&[false, true, false, false, true, false]).unwrap();
/// assert_eq!(out, vec![true]);
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn mux_tree(select_bits: usize) -> Result<Netlist, GenError> {
    if select_bits == 0 {
        return Err(GenError::bad(
            "select_bits",
            select_bits,
            "must be at least 1",
        ));
    }
    if select_bits > 16 {
        return Err(GenError::bad(
            "select_bits",
            select_bits,
            "must be at most 16",
        ));
    }
    let data_count = 1usize << select_bits;
    let mut nl = Netlist::new(format!("mux{data_count}"));
    let sel: Vec<NodeId> = (0..select_bits)
        .map(|i| nl.add_input(format!("s{i}")))
        .collect();
    let mut layer: Vec<NodeId> = (0..data_count)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    for (level, &s) in sel.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(mux2(&mut nl, s, pair[0], pair[1])?);
        }
        layer = next;
        let _ = level;
    }
    nl.add_output("y", layer[0])?;
    Ok(nl)
}

/// The analytically known sensitivity of a mux tree
/// (`select_bits + 1`).
#[must_use]
pub fn sensitivity(select_bits: usize) -> u32 {
    (select_bits + 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_selects_exhaustively() {
        for select_bits in [1usize, 2, 3] {
            let n = 1usize << select_bits;
            let nl = mux_tree(select_bits).unwrap();
            for s in 0..n {
                for data in 0u64..(1 << n) {
                    let mut inputs: Vec<bool> = (0..select_bits).map(|i| s >> i & 1 == 1).collect();
                    inputs.extend((0..n).map(|i| data >> i & 1 == 1));
                    let expect = data >> s & 1 == 1;
                    assert_eq!(
                        nl.evaluate(&inputs).unwrap(),
                        vec![expect],
                        "k={select_bits} s={s} d={data:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn structure() {
        let nl = mux_tree(4).unwrap();
        assert_eq!(nl.input_count(), 4 + 16);
        assert_eq!(nl.output_count(), 1);
        // 15 mux2 cells, 4 gates each (NOT is a gate here).
        assert_eq!(nl.gate_count(), 15 * 4);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(mux_tree(0).is_err());
        assert!(mux_tree(17).is_err());
    }

    #[test]
    fn sensitivity_value() {
        assert_eq!(sensitivity(4), 5);
    }
}
