//! Comparators: equality, magnitude and constant thresholds.
//!
//! Magnitude comparison appears in the `c7552` analog (a 32-bit
//! adder/comparator); the constant-threshold comparator closes the loop for
//! the exact majority voters of `nanobound-redundancy` (popcount ≥ t).
//!
//! The sensitivity of `width`-bit equality over `2·width` inputs is
//! `2·width`: starting from `a == b`, flipping any single input bit breaks
//! the equality.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// A `width`-bit equality comparator.
///
/// Inputs: `a0..a{w-1}`, `b0..b{w-1}`. Output: `eq` (1 iff `a == b`).
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
pub fn equal(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("eq{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let bits: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Xnor, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let eq = if bits.len() == 1 {
        bits[0]
    } else {
        nl.add_gate(GateKind::And, &bits)?
    };
    nl.add_output("eq", eq)?;
    Ok(nl)
}

/// A `width`-bit magnitude comparator computing `a < b` (unsigned).
///
/// Inputs: `a0..a{w-1}`, `b0..b{w-1}` (LSB first). Output: `lt`.
///
/// Built as the classic ripple from the LSB:
/// `lt_i = (!a_i & b_i) | (a_i XNOR b_i) & lt_{i-1}`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
pub fn less_than(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("lt{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut lt: Option<NodeId> = None;
    for i in 0..width {
        let na = nl.add_gate(GateKind::Not, &[a[i]])?;
        let bit_lt = nl.add_gate(GateKind::And, &[na, b[i]])?;
        lt = Some(match lt {
            None => bit_lt,
            Some(prev) => {
                let eq = nl.add_gate(GateKind::Xnor, &[a[i], b[i]])?;
                let keep = nl.add_gate(GateKind::And, &[eq, prev])?;
                nl.add_gate(GateKind::Or, &[bit_lt, keep])?
            }
        });
    }
    nl.add_output("lt", lt.expect("width >= 1"))?;
    Ok(nl)
}

/// A comparator asserting that a `width`-bit unsigned input is ≥ a
/// constant `threshold`.
///
/// Inputs: `x0..x{w-1}` (LSB first). Output: `ge`.
///
/// Built by ripple from the LSB against the constant's bits, needing no
/// constant nodes: `ge_i = x_i > t_i | (x_i == t_i) & ge_{i-1}` folded at
/// generation time.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`, or if `threshold`
/// does not fit in `width` bits (the output would be constant false, almost
/// certainly a caller bug).
///
/// # Examples
///
/// ```
/// let ge = nanobound_gen::comparator::ge_const(3, 5)?;
/// assert_eq!(ge.evaluate(&[true, false, true]).unwrap(), vec![true]);  // 5 >= 5
/// assert_eq!(ge.evaluate(&[false, false, true]).unwrap(), vec![false]); // 4 < 5
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn ge_const(width: usize, threshold: u64) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    if width < 64 && threshold >= 1 << width {
        return Err(GenError::bad(
            "threshold",
            threshold as usize,
            "must fit in `width` bits",
        ));
    }
    let mut nl = Netlist::new(format!("ge{width}_{threshold}"));
    let x: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
    // ge starts true for threshold 0 ("empty suffix is >=").
    // Track as Option: None encodes a compile-time constant.
    let mut ge: Option<NodeId> = None;
    let mut ge_const_val = true;
    for i in 0..width {
        let t = threshold >> i & 1 == 1;
        match (t, ge, ge_const_val) {
            (false, None, true) => {
                // ge stays: x_i=1 -> true; x_i=0 -> prev(true) => still true.
            }
            (false, None, false) => {
                // ge = x_i | prev(false) = x_i.
                ge = Some(x[i]);
            }
            (false, Some(prev), _) => {
                ge = Some(nl.add_gate(GateKind::Or, &[x[i], prev])?);
            }
            (true, None, prev_val) => {
                // ge = x_i & prev.
                if prev_val {
                    ge = Some(x[i]);
                } else {
                    ge_const_val = false; // stays constant false
                }
            }
            (true, Some(prev), _) => {
                ge = Some(nl.add_gate(GateKind::And, &[x[i], prev])?);
            }
        }
    }
    let out = match ge {
        Some(id) => id,
        None => nl.add_const(ge_const_val),
    };
    nl.add_output("ge", out)?;
    Ok(nl)
}

/// The analytically known sensitivity of `width`-bit equality
/// (`2·width`).
#[must_use]
pub fn equality_sensitivity(width: usize) -> u32 {
    (2 * width) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_exhaustive() {
        let nl = equal(3).unwrap();
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut inputs: Vec<bool> = (0..3).map(|i| a >> i & 1 == 1).collect();
                inputs.extend((0..3).map(|i| b >> i & 1 == 1));
                assert_eq!(nl.evaluate(&inputs).unwrap(), vec![a == b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn less_than_exhaustive() {
        let nl = less_than(4).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut inputs: Vec<bool> = (0..4).map(|i| a >> i & 1 == 1).collect();
                inputs.extend((0..4).map(|i| b >> i & 1 == 1));
                assert_eq!(nl.evaluate(&inputs).unwrap(), vec![a < b], "a={a} b={b}");
            }
        }
    }

    #[test]
    fn ge_const_exhaustive_all_thresholds() {
        for width in [1usize, 3, 4] {
            for threshold in 0u64..(1 << width) {
                let nl = ge_const(width, threshold).unwrap();
                for x in 0u64..(1 << width) {
                    let inputs: Vec<bool> = (0..width).map(|i| x >> i & 1 == 1).collect();
                    assert_eq!(
                        nl.evaluate(&inputs).unwrap(),
                        vec![x >= threshold],
                        "w={width} t={threshold} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn ge_zero_is_constant_true() {
        let nl = ge_const(4, 0).unwrap();
        assert_eq!(nl.gate_count(), 0);
        assert_eq!(nl.evaluate(&[false; 4]).unwrap(), vec![true]);
    }

    #[test]
    fn oversized_threshold_rejected() {
        assert!(ge_const(3, 8).is_err());
        assert!(ge_const(3, 7).is_ok());
    }

    #[test]
    fn zero_width_rejected() {
        assert!(equal(0).is_err());
        assert!(less_than(0).is_err());
        assert!(ge_const(0, 0).is_err());
    }

    #[test]
    fn single_bit_equality() {
        let nl = equal(1).unwrap();
        assert_eq!(nl.evaluate(&[true, true]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate(&[true, false]).unwrap(), vec![false]);
    }
}
