//! Hamming single-error correction and detection — the circuit class of
//! ISCAS `c499`/`c1355` ("32-bit single-error-correcting circuit") and
//! `c1908` ("16-bit error detector/corrector").
//!
//! These are XOR-dominated networks: wide parity-check trees followed by a
//! syndrome decoder and correction XORs. Their switching activity under
//! random inputs is high (XOR outputs are unbiased), putting them at the
//! opposite end of the activity spectrum from decoders and priority logic.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// Number of Hamming check bits needed for `data_bits` of payload.
fn check_bits_for(data_bits: usize) -> usize {
    let mut r = 1;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// Hamming code positions: maps each of the `data_bits` to its codeword
/// position (1-based, skipping powers of two which hold check bits).
fn data_positions(data_bits: usize) -> Vec<usize> {
    let mut positions = Vec::with_capacity(data_bits);
    let mut pos = 1usize;
    while positions.len() < data_bits {
        if !pos.is_power_of_two() {
            positions.push(pos);
        }
        pos += 1;
    }
    positions
}

/// A Hamming single-error corrector.
///
/// Inputs: `d0..d{n-1}` (received data), `c0..c{r-1}` (received check
/// bits, `r` = [`check_bits`]). Outputs: `y0..y{n-1}` — the data with any
/// single-bit error (in data *or* check bits) corrected.
///
/// Structure: `r` parity-check XOR trees compute the syndrome; per data
/// bit an `r`-input AND decodes "syndrome == my position"; a final XOR
/// applies the correction. For `data_bits = 32` (`r = 6`) this gives a
/// 38-input, 32-output XOR-dominated network — the class of `c499`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `data_bits < 2` or
/// `data_bits > 256`.
pub fn hamming_corrector(data_bits: usize) -> Result<Netlist, GenError> {
    if data_bits < 2 {
        return Err(GenError::bad("data_bits", data_bits, "must be at least 2"));
    }
    if data_bits > 256 {
        return Err(GenError::bad("data_bits", data_bits, "must be at most 256"));
    }
    let r = check_bits_for(data_bits);
    let positions = data_positions(data_bits);

    let mut nl = Netlist::new(format!("sec{data_bits}"));
    let d: Vec<NodeId> = (0..data_bits)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let c: Vec<NodeId> = (0..r).map(|i| nl.add_input(format!("c{i}"))).collect();

    // Syndrome bit j: parity of all codeword positions with bit j set,
    // which is check bit j (at position 2^j) plus the covered data bits.
    let mut syndrome = Vec::with_capacity(r);
    for j in 0..r {
        let mut taps = vec![c[j]];
        for (i, &pos) in positions.iter().enumerate() {
            if pos >> j & 1 == 1 {
                taps.push(d[i]);
            }
        }
        syndrome.push(nl.add_gate(GateKind::Xor, &taps)?);
    }
    let nsyndrome: Vec<NodeId> = syndrome
        .iter()
        .map(|&s| nl.add_gate(GateKind::Not, &[s]))
        .collect::<Result<_, _>>()?;

    for (i, &pos) in positions.iter().enumerate() {
        let literals: Vec<NodeId> = (0..r)
            .map(|j| {
                if pos >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        let hit = nl.add_gate(GateKind::And, &literals)?;
        let y = nl.add_gate(GateKind::Xor, &[d[i], hit])?;
        nl.add_output(format!("y{i}"), y)?;
    }
    Ok(nl)
}

/// An error detector: syndrome trees plus a single `error` output that
/// fires when any parity check fails — the class of `c1908`.
///
/// Inputs: `d0..d{n-1}`, `c0..c{r-1}`. Outputs: `s0..s{r-1}` (the
/// syndrome) and `error` (OR of the syndrome).
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] under the same conditions as
/// [`hamming_corrector`].
pub fn error_detector(data_bits: usize) -> Result<Netlist, GenError> {
    if data_bits < 2 {
        return Err(GenError::bad("data_bits", data_bits, "must be at least 2"));
    }
    if data_bits > 256 {
        return Err(GenError::bad("data_bits", data_bits, "must be at most 256"));
    }
    let r = check_bits_for(data_bits);
    let positions = data_positions(data_bits);

    let mut nl = Netlist::new(format!("edc{data_bits}"));
    let d: Vec<NodeId> = (0..data_bits)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let c: Vec<NodeId> = (0..r).map(|i| nl.add_input(format!("c{i}"))).collect();

    let mut syndrome = Vec::with_capacity(r);
    for j in 0..r {
        let mut taps = vec![c[j]];
        for (i, &pos) in positions.iter().enumerate() {
            if pos >> j & 1 == 1 {
                taps.push(d[i]);
            }
        }
        syndrome.push(nl.add_gate(GateKind::Xor, &taps)?);
    }
    let error = nl.add_gate(GateKind::Or, &syndrome)?;
    for (j, &s) in syndrome.iter().enumerate() {
        nl.add_output(format!("s{j}"), s)?;
    }
    nl.add_output("error", error)?;
    Ok(nl)
}

/// A SEC-DED (single-error-correcting, double-error-detecting) extended
/// Hamming codec — the circuit class of ISCAS `c1908` ("16-bit SEC/DED
/// error corrector").
///
/// Inputs: `d0..d{n-1}` (received data), `c0..c{r-1}` (received check
/// bits), `P` (received overall parity — the extended-Hamming bit that
/// upgrades SEC to SEC-DED). Outputs:
///
/// - `y0..y{n-1}` — the data, with a single-bit error corrected (the
///   correction is gated on the overall parity, so a double error is
///   never miscorrected);
/// - `s0..s{r-1}` — the syndrome;
/// - `perr` — overall parity mismatch (XOR of every input; odd weight
///   of flips);
/// - `ded` — double-error detected (syndrome nonzero but overall
///   parity clean).
///
/// Structure: `r` parity-check XOR trees and one `n + r + 1`-input
/// overall-parity tree, `r` inverters, `n` syndrome-decode ANDs, `n`
/// parity-gated correction ANDs and XORs, and the `ded` cone. For
/// `data_bits = 16` (`r = 5`) this is a 22-input, 23-output network;
/// NAND-expanded ([`crate::iscas::expand_xor_to_nand`]) it lands in the
/// size class of `c1908`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] under the same conditions as
/// [`hamming_corrector`].
pub fn sec_ded(data_bits: usize) -> Result<Netlist, GenError> {
    if data_bits < 2 {
        return Err(GenError::bad("data_bits", data_bits, "must be at least 2"));
    }
    if data_bits > 256 {
        return Err(GenError::bad("data_bits", data_bits, "must be at most 256"));
    }
    let r = check_bits_for(data_bits);
    let positions = data_positions(data_bits);

    let mut nl = Netlist::new(format!("secded{data_bits}"));
    let d: Vec<NodeId> = (0..data_bits)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let c: Vec<NodeId> = (0..r).map(|i| nl.add_input(format!("c{i}"))).collect();
    let p = nl.add_input("P");

    let mut syndrome = Vec::with_capacity(r);
    for j in 0..r {
        let mut taps = vec![c[j]];
        for (i, &pos) in positions.iter().enumerate() {
            if pos >> j & 1 == 1 {
                taps.push(d[i]);
            }
        }
        syndrome.push(nl.add_gate(GateKind::Xor, &taps)?);
    }
    let nsyndrome: Vec<NodeId> = syndrome
        .iter()
        .map(|&s| nl.add_gate(GateKind::Not, &[s]))
        .collect::<Result<_, _>>()?;

    // Overall parity mismatch: the received word is even-parity by
    // construction, so the XOR of every input is 1 iff an odd number
    // of bits flipped in transit.
    let mut all = d.clone();
    all.extend_from_slice(&c);
    all.push(p);
    let perr = nl.add_gate(GateKind::Xor, &all)?;

    for (i, &pos) in positions.iter().enumerate() {
        let literals: Vec<NodeId> = (0..r)
            .map(|j| {
                if pos >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyndrome[j]
                }
            })
            .collect();
        let hit = nl.add_gate(GateKind::And, &literals)?;
        // Correct only when the overall parity confirms an odd number
        // of flips — a double error must not be "corrected" into a
        // third.
        let flip = nl.add_gate(GateKind::And, &[hit, perr])?;
        let y = nl.add_gate(GateKind::Xor, &[d[i], flip])?;
        nl.add_output(format!("y{i}"), y)?;
    }
    for (j, &s) in syndrome.iter().enumerate() {
        nl.add_output(format!("s{j}"), s)?;
    }
    let any_syndrome = nl.add_gate(GateKind::Or, &syndrome)?;
    let nperr = nl.add_gate(GateKind::Not, &[perr])?;
    let ded = nl.add_gate(GateKind::And, &[nperr, any_syndrome])?;
    nl.add_output("perr", perr)?;
    nl.add_output("ded", ded)?;
    Ok(nl)
}

/// Number of check bits the generators expect for `data_bits` of payload.
#[must_use]
pub fn check_bits(data_bits: usize) -> usize {
    check_bits_for(data_bits)
}

/// Computes the check word the corrector expects for a clean data word
/// (reference encoder used by the tests).
#[must_use]
pub fn encode_checks(data: &[bool]) -> Vec<bool> {
    let r = check_bits_for(data.len());
    let positions = data_positions(data.len());
    (0..r)
        .map(|j| {
            positions
                .iter()
                .enumerate()
                .filter(|(_, &pos)| pos >> j & 1 == 1)
                .fold(false, |acc, (i, _)| acc ^ data[i])
        })
        .collect()
}

/// Computes the overall parity bit `P` the SEC-DED codec expects for a
/// clean `(data, checks)` word: the bit making the whole codeword
/// even-parity (reference encoder used by the tests).
#[must_use]
pub fn encode_overall_parity(data: &[bool], checks: &[bool]) -> bool {
    data.iter().chain(checks).fold(false, |acc, &b| acc ^ b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secded_eval(nl: &Netlist, data: &[bool], checks: &[bool], parity: bool) -> Vec<bool> {
        let mut inputs = data.to_vec();
        inputs.extend_from_slice(checks);
        inputs.push(parity);
        nl.evaluate(&inputs).unwrap()
    }

    // Output layout of `sec_ded(n)`: y0..y{n-1}, s0..s{r-1}, perr, ded.
    fn split_secded(out: &[bool], n: usize, r: usize) -> (&[bool], &[bool], bool, bool) {
        (&out[..n], &out[n..n + r], out[n + r], out[n + r + 1])
    }

    #[test]
    fn secded_clean_word_passes_through() {
        let nl = sec_ded(16).unwrap();
        for word in [0u64, 0xA5A5, 0xFFFF, 0x1234] {
            let data: Vec<bool> = (0..16).map(|i| word >> i & 1 == 1).collect();
            let checks = encode_checks(&data);
            let parity = encode_overall_parity(&data, &checks);
            let out = secded_eval(&nl, &data, &checks, parity);
            let (y, s, perr, ded) = split_secded(&out, 16, 5);
            assert_eq!(y, data, "word {word:#x}");
            assert!(s.iter().all(|&b| !b), "clean syndrome, word {word:#x}");
            assert!(!perr && !ded, "word {word:#x}");
        }
    }

    #[test]
    fn secded_single_data_error_corrected() {
        let nl = sec_ded(16).unwrap();
        let data: Vec<bool> = (0..16).map(|i| 0xBEEF >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        let parity = encode_overall_parity(&data, &checks);
        for flip in 0..16 {
            let mut corrupted = data.clone();
            corrupted[flip] = !corrupted[flip];
            let out = secded_eval(&nl, &corrupted, &checks, parity);
            let (y, _, perr, ded) = split_secded(&out, 16, 5);
            assert_eq!(y, data, "flip {flip}");
            assert!(perr, "flip {flip} is an odd-weight error");
            assert!(!ded, "flip {flip} is not a double error");
        }
    }

    #[test]
    fn secded_check_and_parity_errors_are_harmless() {
        let nl = sec_ded(16).unwrap();
        let data: Vec<bool> = (0..16).map(|i| 0x3C7 >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        let parity = encode_overall_parity(&data, &checks);
        for flip in 0..checks.len() {
            let mut corrupted = checks.clone();
            corrupted[flip] = !corrupted[flip];
            let out = secded_eval(&nl, &data, &corrupted, parity);
            let (y, _, perr, ded) = split_secded(&out, 16, 5);
            assert_eq!(y, data, "check flip {flip}");
            assert!(perr && !ded, "check flip {flip}");
        }
        let out = secded_eval(&nl, &data, &checks, !parity);
        let (y, s, perr, ded) = split_secded(&out, 16, 5);
        assert_eq!(y, data, "parity-bit flip");
        assert!(s.iter().all(|&b| !b), "parity flip leaves syndrome clean");
        assert!(perr && !ded);
    }

    #[test]
    fn secded_double_error_detected_not_miscorrected() {
        let nl = sec_ded(16).unwrap();
        let data: Vec<bool> = (0..16).map(|i| 0xF0F0 >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        let parity = encode_overall_parity(&data, &checks);
        for (a, b) in [(0usize, 1usize), (2, 9), (7, 15)] {
            let mut corrupted = data.clone();
            corrupted[a] = !corrupted[a];
            corrupted[b] = !corrupted[b];
            let out = secded_eval(&nl, &corrupted, &checks, parity);
            let (y, _, perr, ded) = split_secded(&out, 16, 5);
            assert!(ded, "double error ({a},{b}) detected");
            assert!(!perr, "double error is even-weight");
            // The correction is parity-gated: the received (wrong) data
            // passes through untouched rather than gaining a third flip.
            assert_eq!(y, corrupted, "double error ({a},{b}) not miscorrected");
        }
    }

    #[test]
    fn secded_interface_shape() {
        let nl = sec_ded(16).unwrap();
        assert_eq!(nl.input_count(), 22); // 16 data + 5 checks + P
        assert_eq!(nl.output_count(), 23); // 16 y + 5 s + perr + ded
        assert!(sec_ded(1).is_err());
        assert!(sec_ded(300).is_err());
    }

    #[test]
    fn check_bit_counts() {
        assert_eq!(check_bits(4), 3);
        assert_eq!(check_bits(11), 4);
        assert_eq!(check_bits(16), 5);
        assert_eq!(check_bits(32), 6);
        assert_eq!(check_bits(57), 6);
        assert_eq!(check_bits(64), 7);
    }

    fn corrected(nl: &Netlist, data: &[bool], checks: &[bool]) -> Vec<bool> {
        let mut inputs = data.to_vec();
        inputs.extend_from_slice(checks);
        nl.evaluate(&inputs).unwrap()
    }

    #[test]
    fn clean_word_passes_through() {
        let nl = hamming_corrector(8).unwrap();
        for word in [0u64, 0x5A, 0xFF, 0x13] {
            let data: Vec<bool> = (0..8).map(|i| word >> i & 1 == 1).collect();
            let checks = encode_checks(&data);
            assert_eq!(corrected(&nl, &data, &checks), data, "word {word:#x}");
        }
    }

    #[test]
    fn single_data_error_corrected() {
        let nl = hamming_corrector(8).unwrap();
        let word = 0xA5u64;
        let data: Vec<bool> = (0..8).map(|i| word >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        for flip in 0..8 {
            let mut corrupted = data.clone();
            corrupted[flip] = !corrupted[flip];
            assert_eq!(corrected(&nl, &corrupted, &checks), data, "flip {flip}");
        }
    }

    #[test]
    fn single_check_error_harmless() {
        let nl = hamming_corrector(8).unwrap();
        let data: Vec<bool> = (0..8).map(|i| 0x3C >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        for flip in 0..checks.len() {
            let mut corrupted = checks.clone();
            corrupted[flip] = !corrupted[flip];
            assert_eq!(corrected(&nl, &data, &corrupted), data, "check flip {flip}");
        }
    }

    #[test]
    fn detector_flags_errors() {
        let nl = error_detector(8).unwrap();
        let data: Vec<bool> = (0..8).map(|i| 0x7B >> i & 1 == 1).collect();
        let checks = encode_checks(&data);
        let mut inputs = data.clone();
        inputs.extend_from_slice(&checks);
        let out = nl.evaluate(&inputs).unwrap();
        assert!(!out[checks.len()], "clean word flags no error");

        let mut corrupted = inputs.clone();
        corrupted[3] = !corrupted[3];
        let out = nl.evaluate(&corrupted).unwrap();
        assert!(out[checks.len()], "corrupted word flags error");
    }

    #[test]
    fn c499_class_interface() {
        let nl = hamming_corrector(32).unwrap();
        assert_eq!(nl.input_count(), 38); // 32 data + 6 checks
        assert_eq!(nl.output_count(), 32);
    }

    #[test]
    fn degenerate_sizes_rejected() {
        assert!(hamming_corrector(1).is_err());
        assert!(hamming_corrector(300).is_err());
        assert!(error_detector(1).is_err());
    }
}
