//! Adders and population counters.
//!
//! Ripple-carry adders are one of the two computer-arithmetic circuit
//! families the paper evaluates explicitly (Section 6). The carry-lookahead
//! variant computes the same function with a shallower, wider structure and
//! serves as an ablation point for the depth-related bounds. [`popcount`]
//! is the building block of the exact majority voters in
//! `nanobound-redundancy`.
//!
//! The sensitivity of `width`-bit addition (with carry-in) is `2·width + 1`:
//! from any state, flipping any single input bit changes the numeric value
//! of `a + b + cin`, hence at least one output bit.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// Builds a full adder over existing nodes; returns `(sum, carry)`.
pub(crate) fn full_adder(
    nl: &mut Netlist,
    a: NodeId,
    b: NodeId,
    cin: NodeId,
) -> Result<(NodeId, NodeId), GenError> {
    let sum = nl.add_gate(GateKind::Xor, &[a, b, cin])?;
    let cout = nl.add_gate(GateKind::Maj, &[a, b, cin])?;
    Ok((sum, cout))
}

/// Builds a half adder; returns `(sum, carry)`.
pub(crate) fn half_adder(
    nl: &mut Netlist,
    a: NodeId,
    b: NodeId,
) -> Result<(NodeId, NodeId), GenError> {
    let sum = nl.add_gate(GateKind::Xor, &[a, b])?;
    let carry = nl.add_gate(GateKind::And, &[a, b])?;
    Ok((sum, carry))
}

/// A `width`-bit ripple-carry adder.
///
/// Inputs (in order): `a0..a{w-1}`, `b0..b{w-1}`, `cin`. Outputs:
/// `s0..s{w-1}`, `cout`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
///
/// # Examples
///
/// ```
/// let rca = nanobound_gen::adder::ripple_carry(4)?;
/// // 3 + 5 = 8: a = 0b0011, b = 0b0101, cin = 0.
/// let mut inputs = vec![true, true, false, false]; // a, LSB first
/// inputs.extend([true, false, true, false]);       // b
/// inputs.push(false);                              // cin
/// let out = rca.evaluate(&inputs).unwrap();
/// assert_eq!(out, vec![false, false, false, true, false]); // 8, no carry
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn ripple_carry(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("rca{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut carry = nl.add_input("cin");
    let mut sums = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = full_adder(&mut nl, a[i], b[i], carry)?;
        sums.push(s);
        carry = c;
    }
    for (i, s) in sums.iter().enumerate() {
        nl.add_output(format!("s{i}"), *s)?;
    }
    nl.add_output("cout", carry)?;
    Ok(nl)
}

/// A `width`-bit carry-lookahead adder with 4-bit lookahead groups.
///
/// Same interface and function as [`ripple_carry`]: inputs `a`, `b`, `cin`;
/// outputs `s0..s{w-1}`, `cout`. Within each group the carries are computed
/// from generate/propagate terms in two logic levels; groups are chained.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
pub fn carry_lookahead(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("cla{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");

    // Bit-level generate and propagate.
    let g: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::And, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;
    let p: Vec<NodeId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Xor, &[a[i], b[i]]))
        .collect::<Result<_, _>>()?;

    let mut sums = Vec::with_capacity(width);
    let mut group_cin = cin;
    for group in (0..width).step_by(4) {
        let hi = (group + 4).min(width);
        // carries[j] is the carry into bit `group + j`.
        let mut carries = vec![group_cin];
        for j in group..hi {
            // c_{j+1} = g_j | p_j & g_{j-1} | ... | p_j..p_{group} & group_cin
            let mut terms: Vec<NodeId> = vec![g[j]];
            for t in group..j {
                // p_j & p_{j-1} & ... & p_{t+1} & g_t
                let mut lits: Vec<NodeId> = (t + 1..=j).map(|x| p[x]).collect();
                lits.push(g[t]);
                terms.push(nl.add_gate(GateKind::And, &lits)?);
            }
            let mut lits: Vec<NodeId> = (group..=j).map(|x| p[x]).collect();
            lits.push(group_cin);
            terms.push(nl.add_gate(GateKind::And, &lits)?);
            let c_next = if terms.len() == 1 {
                terms[0]
            } else {
                nl.add_gate(GateKind::Or, &terms)?
            };
            carries.push(c_next);
        }
        for (j, bit) in (group..hi).enumerate() {
            sums.push(nl.add_gate(GateKind::Xor, &[p[bit], carries[j]])?);
        }
        group_cin = *carries.last().expect("group has at least one carry");
    }

    for (i, s) in sums.iter().enumerate() {
        nl.add_output(format!("s{i}"), *s)?;
    }
    nl.add_output("cout", group_cin)?;
    Ok(nl)
}

/// A `width`-bit Kogge-Stone adder: a parallel-prefix carry network of
/// logarithmic depth.
///
/// Same interface and function as [`ripple_carry`]: inputs `a`, `b`,
/// `cin`; outputs `s0..s{w-1}`, `cout`. The prefix tree combines
/// generate/propagate pairs with the associative operator
/// `(g, p) ∘ (g', p') = (g | p·g', p·p')` at stride 1, 2, 4, …, giving
/// depth `O(log₂ width)` against the ripple adder's `O(width)` — the
/// structural contrast that exercises the paper's depth bound (Theorem
/// 4): both adders have the same sensitivity and near-identical `S₀`
/// per bit, but sit at opposite ends of the depth/size trade-off.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
///
/// # Examples
///
/// ```
/// use nanobound_gen::adder;
/// use nanobound_logic::CircuitStats;
///
/// let ks = adder::kogge_stone(16)?;
/// let rca = adder::ripple_carry(16)?;
/// assert!(CircuitStats::of(&ks).depth < CircuitStats::of(&rca).depth);
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn kogge_stone(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let mut nl = Netlist::new(format!("ks{width}"));
    let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("b{i}"))).collect();
    let cin = nl.add_input("cin");

    // Bit-level generate/propagate; cin enters as a generate-only cell
    // at prefix position 0, shifting everything by one.
    let mut g: Vec<NodeId> = Vec::with_capacity(width + 1);
    let mut p: Vec<NodeId> = Vec::with_capacity(width + 1);
    let zero = nl.add_const(false);
    g.push(cin);
    p.push(zero);
    let mut half_sum = Vec::with_capacity(width);
    for i in 0..width {
        g.push(nl.add_gate(GateKind::And, &[a[i], b[i]])?);
        let prop = nl.add_gate(GateKind::Xor, &[a[i], b[i]])?;
        p.push(prop);
        half_sum.push(prop);
    }

    // Parallel-prefix sweep: after the pass at stride `d`, cell `i`
    // holds the (g, p) of the span `[i-2d+1 ..= i]` combined.
    let mut stride = 1;
    while stride <= width {
        let mut next_g = g.clone();
        let mut next_p = p.clone();
        for i in stride..=width {
            let upper_gp_lower = nl.add_gate(GateKind::And, &[p[i], g[i - stride]])?;
            next_g[i] = nl.add_gate(GateKind::Or, &[g[i], upper_gp_lower])?;
            next_p[i] = nl.add_gate(GateKind::And, &[p[i], p[i - stride]])?;
        }
        g = next_g;
        p = next_p;
        stride *= 2;
    }

    // g[i] is now the carry *into* bit i (g[0] = cin span; g[i] spans
    // cin plus bits 0..i-1... offset by the cin cell): carry into bit i
    // is the combined generate of prefix cells 0..=i, i.e. g[i].
    for (i, &hs) in half_sum.iter().enumerate() {
        let s = nl.add_gate(GateKind::Xor, &[hs, g[i]])?;
        nl.add_output(format!("s{i}"), s)?;
    }
    nl.add_output("cout", g[width])?;
    Ok(nl)
}

/// A population counter: counts the ones among `width` inputs.
///
/// Inputs: `x0..x{w-1}`. Outputs: `c0..c{b-1}` (LSB first) where
/// `b = ceil(log2(width + 1))`.
///
/// Built as an accumulating chain of half adders, which keeps the
/// construction simple and the gate count `O(width · log width)`.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width == 0`.
///
/// # Examples
///
/// ```
/// let pc = nanobound_gen::adder::popcount(5)?;
/// let out = pc.evaluate(&[true, false, true, true, false]).unwrap();
/// // 3 ones -> 011 (LSB first: true, true, false)
/// assert_eq!(out, vec![true, true, false]);
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn popcount(width: usize) -> Result<Netlist, GenError> {
    if width == 0 {
        return Err(GenError::bad("width", width, "must be at least 1"));
    }
    let out_bits = usize::BITS as usize - width.leading_zeros() as usize;
    let mut nl = Netlist::new(format!("popcount{width}"));
    let inputs: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();

    // count := 0, then for each input bit: count += bit (ripple of HAs).
    let mut count: Vec<NodeId> = vec![inputs[0]];
    for &bit in &inputs[1..] {
        let mut carry = bit;
        let mut next = Vec::with_capacity(count.len() + 1);
        for &c in &count {
            let (s, co) = half_adder(&mut nl, c, carry)?;
            next.push(s);
            carry = co;
        }
        next.push(carry);
        count = next;
    }
    count.truncate(out_bits);
    for (i, c) in count.iter().enumerate() {
        nl.add_output(format!("c{i}"), *c)?;
    }
    Ok(nl)
}

/// The analytically known sensitivity of `width`-bit addition with carry-in
/// (`2·width + 1` — every input flip changes the arithmetic result).
#[must_use]
pub fn adder_sensitivity(width: usize) -> u32 {
    (2 * width + 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobound_logic::topo;

    fn eval_adder(nl: &Netlist, width: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let mut inputs: Vec<bool> = (0..width).map(|i| a >> i & 1 == 1).collect();
        inputs.extend((0..width).map(|i| b >> i & 1 == 1));
        inputs.push(cin);
        let out = nl.evaluate(&inputs).unwrap();
        let mut sum = 0u64;
        for (i, &bit) in out[..width].iter().enumerate() {
            if bit {
                sum |= 1 << i;
            }
        }
        (sum, out[width])
    }

    #[test]
    fn rca_adds_exhaustively_4bit() {
        let nl = ripple_carry(4).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                for cin in [false, true] {
                    let (sum, cout) = eval_adder(&nl, 4, a, b, cin);
                    let expect = a + b + u64::from(cin);
                    assert_eq!(sum, expect & 0xF, "a={a} b={b} cin={cin}");
                    assert_eq!(cout, expect > 0xF, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn cla_matches_rca_exhaustively_5bit() {
        // Width 5 exercises a full group plus a partial second group.
        let rca = ripple_carry(5).unwrap();
        let cla = carry_lookahead(5).unwrap();
        for a in 0u64..32 {
            for b in 0u64..32 {
                for cin in [false, true] {
                    assert_eq!(
                        eval_adder(&rca, 5, a, b, cin),
                        eval_adder(&cla, 5, a, b, cin),
                        "a={a} b={b} cin={cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn cla_is_shallower_than_rca() {
        let rca = ripple_carry(16).unwrap();
        let cla = carry_lookahead(16).unwrap();
        assert!(topo::depth(&cla) < topo::depth(&rca));
    }

    #[test]
    fn rca_structure() {
        let nl = ripple_carry(8).unwrap();
        assert_eq!(nl.input_count(), 17);
        assert_eq!(nl.output_count(), 9);
        assert_eq!(nl.gate_count(), 16); // XOR3 + MAJ per bit
    }

    #[test]
    fn popcount_counts() {
        for width in [1usize, 2, 3, 5, 7, 9] {
            let nl = popcount(width).unwrap();
            for bits in 0u64..(1 << width) {
                let inputs: Vec<bool> = (0..width).map(|i| bits >> i & 1 == 1).collect();
                let out = nl.evaluate(&inputs).unwrap();
                let mut count = 0u64;
                for (i, &bit) in out.iter().enumerate() {
                    if bit {
                        count |= 1 << i;
                    }
                }
                assert_eq!(
                    count,
                    u64::from(bits.count_ones()),
                    "w={width} bits={bits:b}"
                );
            }
        }
    }

    #[test]
    fn popcount_output_width() {
        assert_eq!(popcount(1).unwrap().output_count(), 1);
        assert_eq!(popcount(3).unwrap().output_count(), 2);
        assert_eq!(popcount(4).unwrap().output_count(), 3);
        assert_eq!(popcount(7).unwrap().output_count(), 3);
        assert_eq!(popcount(8).unwrap().output_count(), 4);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(ripple_carry(0).is_err());
        assert!(carry_lookahead(0).is_err());
        assert!(popcount(0).is_err());
    }

    #[test]
    fn sensitivity_value() {
        assert_eq!(adder_sensitivity(8), 17);
    }
}
