//! Parity circuits — the functions for which the paper's bounds are tight.
//!
//! Theorem 2 and the upper bound it cites achieve equality "for parity
//! functions, implemented using decision trees or Shannon-like circuits";
//! Figure 3 of the paper is computed for a 10-input parity function with
//! `s = 10` and `S0 = 21`. These generators produce the XOR-tree and
//! XOR-chain realizations.
//!
//! The Boolean sensitivity of `n`-input parity is exactly `n`: flipping any
//! single input always flips the output.

use nanobound_logic::{GateKind, Netlist, NodeId};

use crate::error::GenError;

/// A balanced tree of `fanin`-input XOR gates computing `width`-input
/// parity.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width < 2` or `fanin < 2`.
///
/// # Examples
///
/// ```
/// let p = nanobound_gen::parity::parity_tree(10, 2)?;
/// assert_eq!(p.gate_count(), 9); // n-1 two-input XORs
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn parity_tree(width: usize, fanin: usize) -> Result<Netlist, GenError> {
    if width < 2 {
        return Err(GenError::bad("width", width, "must be at least 2"));
    }
    if fanin < 2 {
        return Err(GenError::bad("fanin", fanin, "must be at least 2"));
    }
    let mut nl = Netlist::new(format!("parity{width}_k{fanin}"));
    let mut frontier: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
    while frontier.len() > 1 {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(fanin));
        for chunk in frontier.chunks(fanin) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(nl.add_gate(GateKind::Xor, chunk)?);
            }
        }
        frontier = next;
    }
    nl.add_output("parity", frontier[0])?;
    Ok(nl)
}

/// A linear chain of 2-input XORs computing `width`-input parity.
///
/// Same function as [`parity_tree`] with maximal depth (`width - 1`);
/// useful as an ablation point for the depth bounds.
///
/// # Errors
///
/// Returns [`GenError::BadParameter`] if `width < 2`.
pub fn parity_chain(width: usize) -> Result<Netlist, GenError> {
    if width < 2 {
        return Err(GenError::bad("width", width, "must be at least 2"));
    }
    let mut nl = Netlist::new(format!("parity_chain{width}"));
    let inputs: Vec<NodeId> = (0..width).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut acc = inputs[0];
    for &x in &inputs[1..] {
        acc = nl.add_gate(GateKind::Xor, &[acc, x])?;
    }
    nl.add_output("parity", acc)?;
    Ok(nl)
}

/// The analytically known sensitivity of `width`-input parity.
#[must_use]
pub fn sensitivity(width: usize) -> u32 {
    width as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobound_logic::{topo, CircuitStats};

    fn parity_of(bits: u32, width: usize) -> bool {
        (bits & ((1u32 << width) - 1)).count_ones() % 2 == 1
    }

    #[test]
    fn tree_computes_parity_exhaustively() {
        for width in [2usize, 3, 5, 8, 10] {
            for fanin in [2usize, 3, 4] {
                let nl = parity_tree(width, fanin).unwrap();
                for bits in 0u32..(1 << width) {
                    let assignment: Vec<bool> = (0..width).map(|i| bits >> i & 1 == 1).collect();
                    let out = nl.evaluate(&assignment).unwrap();
                    assert_eq!(
                        out,
                        vec![parity_of(bits, width)],
                        "w={width} k={fanin} {bits:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn chain_computes_parity() {
        let nl = parity_chain(6).unwrap();
        for bits in 0u32..64 {
            let assignment: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(nl.evaluate(&assignment).unwrap(), vec![parity_of(bits, 6)]);
        }
    }

    #[test]
    fn tree_is_balanced_chain_is_deep() {
        let tree = parity_tree(16, 2).unwrap();
        let chain = parity_chain(16).unwrap();
        assert_eq!(topo::depth(&tree), 4);
        assert_eq!(topo::depth(&chain), 15);
        assert_eq!(tree.gate_count(), 15);
        assert_eq!(chain.gate_count(), 15);
    }

    #[test]
    fn gate_counts_match_fanin() {
        // 10-input parity with 2-input gates: 9 gates. With fanin 3: 10->4->2->1: 3+2(chunks 4: [3,1]->2 gates? ) — just assert consistency.
        let k2 = parity_tree(10, 2).unwrap();
        assert_eq!(k2.gate_count(), 9);
        let st = CircuitStats::of(&parity_tree(10, 3).unwrap());
        assert!(st.max_fanin <= 3);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(parity_tree(1, 2).is_err());
        assert!(parity_tree(4, 1).is_err());
        assert!(parity_chain(1).is_err());
    }

    #[test]
    fn sensitivity_is_width() {
        assert_eq!(sensitivity(10), 10);
    }
}
