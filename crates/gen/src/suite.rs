//! The benchmark suite evaluated by the paper's Section 6.
//!
//! The paper considers "a subset of ISCAS'85 benchmarks and some computer
//! arithmetic circuits (ripple-carry adders and array multipliers) with
//! various bitwidths". [`standard_suite`] assembles exactly that:
//! the [`crate::iscas`] benchmarks plus ripple-carry adders and array
//! multipliers at several widths.
//!
//! Each [`Benchmark`] carries its [`CircuitClass`] (which predicts the
//! switching-activity regime) and, where analytically known, the exact
//! Boolean sensitivity — letting the experiment pipeline skip Monte-Carlo
//! estimation.

use std::fmt;

use nanobound_logic::Netlist;

use crate::error::GenError;
use crate::{adder, ecc, iscas, multiplier, parity};

/// Broad structural class of a benchmark; predicts the switching-activity
/// and sensitivity regime the paper's bounds respond to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CircuitClass {
    /// XOR-dominated networks (parity, ECC): activity near 0.5, high
    /// sensitivity — where the bounds are tightest.
    XorDominated,
    /// Adder/multiplier datapaths: ripple structure, medium activity.
    Arithmetic,
    /// Priority/control logic: skewed signal probabilities, low activity —
    /// the regime with the largest energy overhead factors.
    Control,
    /// Mixed datapath + control (ALUs, adder/comparator combos).
    Mixed,
}

impl fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CircuitClass::XorDominated => "xor-dominated",
            CircuitClass::Arithmetic => "arithmetic",
            CircuitClass::Control => "control",
            CircuitClass::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// A named benchmark circuit with its metadata.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name used in reports (e.g. `c6288a`, `rca16`).
    pub name: String,
    /// The generated netlist (pre-optimization; the experiment pipeline
    /// applies the synthesis-lite flow itself).
    pub netlist: Netlist,
    /// Structural class.
    pub class: CircuitClass,
    /// Exact Boolean sensitivity, when analytically known for this
    /// generator; `None` means the pipeline must measure it.
    pub sensitivity_hint: Option<u32>,
}

impl Benchmark {
    /// Bundles a netlist with its metadata, taking the benchmark name from
    /// the netlist's design name.
    #[must_use]
    pub fn new(netlist: Netlist, class: CircuitClass, sensitivity_hint: Option<u32>) -> Self {
        Benchmark {
            name: netlist.name().to_owned(),
            netlist,
            class,
            sensitivity_hint,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.name, self.class, self.netlist)
    }
}

/// The ISCAS'85 subset: `c17` verbatim plus the functional analogs
/// documented in [`crate::iscas`].
///
/// # Errors
///
/// Propagates [`GenError`] from the generators; never fails for the fixed
/// parameters used here.
pub fn iscas_suite() -> Result<Vec<Benchmark>, GenError> {
    let c1908_inputs = 16 + ecc::check_bits(16) + 1; // data + checks + overall parity
    Ok(vec![
        Benchmark::new(iscas::c17(), CircuitClass::Control, None),
        Benchmark::new(iscas::c432_analog()?, CircuitClass::Control, None),
        Benchmark::new(iscas::c499_analog()?, CircuitClass::XorDominated, None),
        Benchmark::new(iscas::c880_analog()?, CircuitClass::Mixed, None),
        Benchmark::new(iscas::c1355_analog()?, CircuitClass::XorDominated, None),
        // The overall-parity output `perr` XORs all 22 inputs, so any
        // single flip always toggles it: s = n exactly.
        Benchmark::new(
            iscas::c1908_analog()?,
            CircuitClass::XorDominated,
            Some(c1908_inputs as u32),
        ),
        Benchmark::new(
            iscas::c6288_analog()?,
            CircuitClass::Arithmetic,
            Some(multiplier::sensitivity(16, 16)),
        ),
        // The 32-bit ripple adder inside already reaches s = 2·32 + 1 = 65,
        // which equals the input count, the ceiling for any sensitivity.
        Benchmark::new(iscas::c7552_analog()?, CircuitClass::Mixed, Some(65)),
    ])
}

/// The paper's computer-arithmetic circuits: ripple-carry adders and array
/// multipliers "with various bitwidths".
///
/// # Errors
///
/// Propagates [`GenError`] from the generators; never fails for the fixed
/// parameters used here.
pub fn arithmetic_suite() -> Result<Vec<Benchmark>, GenError> {
    let mut out = Vec::new();
    for width in [8usize, 16, 32, 64] {
        out.push(Benchmark::new(
            adder::ripple_carry(width)?,
            CircuitClass::Arithmetic,
            Some(adder::adder_sensitivity(width)),
        ));
    }
    for width in [4usize, 8] {
        out.push(Benchmark::new(
            multiplier::array(width, width)?,
            CircuitClass::Arithmetic,
            Some(multiplier::sensitivity(width, width)),
        ));
    }
    // Parity trees of 2-input XORs — the function family for which every
    // bound in the paper is *tight* (decision-tree/Shannon circuits), and
    // the source of its "at least 40% more energy at 1% gate error"
    // headline regime.
    for width in [16usize, 32, 64] {
        out.push(Benchmark::new(
            parity::parity_tree(width, 2)?,
            CircuitClass::XorDominated,
            Some(parity::sensitivity(width)),
        ));
    }
    Ok(out)
}

/// The full Section-6 benchmark set: [`iscas_suite`] followed by
/// [`arithmetic_suite`].
///
/// # Errors
///
/// Propagates [`GenError`] from the generators; never fails for the fixed
/// parameters used here.
///
/// # Examples
///
/// ```
/// let suite = nanobound_gen::standard_suite()?;
/// assert!(suite.len() >= 12);
/// assert!(suite.iter().any(|b| b.name == "c6288a"));
/// # Ok::<(), nanobound_gen::GenError>(())
/// ```
pub fn standard_suite() -> Result<Vec<Benchmark>, GenError> {
    let mut suite = iscas_suite()?;
    suite.extend(arithmetic_suite()?);
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let suite = standard_suite().unwrap();
        let mut names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn suite_netlists_validate() {
        for b in standard_suite().unwrap() {
            b.netlist.validate().unwrap();
            assert!(b.netlist.gate_count() > 0, "{} is empty", b.name);
        }
    }

    #[test]
    fn hints_do_not_exceed_input_count() {
        for b in standard_suite().unwrap() {
            if let Some(s) = b.sensitivity_hint {
                assert!(
                    (s as usize) <= b.netlist.input_count(),
                    "{}: hint {} > n {}",
                    b.name,
                    s,
                    b.netlist.input_count()
                );
            }
        }
    }

    #[test]
    fn classes_cover_all_regimes() {
        let suite = standard_suite().unwrap();
        for class in [
            CircuitClass::XorDominated,
            CircuitClass::Arithmetic,
            CircuitClass::Control,
            CircuitClass::Mixed,
        ] {
            assert!(suite.iter().any(|b| b.class == class), "missing {class}");
        }
    }

    #[test]
    fn display_is_informative() {
        let suite = iscas_suite().unwrap();
        let line = suite[0].to_string();
        assert!(line.contains("c17"));
        assert!(line.contains("control"));
    }
}
