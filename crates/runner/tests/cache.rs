//! Corruption-tolerance suite for the cached runner entry points.
//!
//! The cache's contract is that it can *never* change a result or crash
//! a run: a truncated, bit-flipped, oversized or garbage entry is a
//! counted miss, the shard recomputes, and the merged outcome stays
//! byte-identical to a cold (or uncached) run. These tests damage
//! on-disk entries mid-suite and assert exactly that.

use std::fs;
use std::path::PathBuf;

use nanobound_cache::{FingerprintBuilder, ShardCache};
use nanobound_logic::{GateKind, Netlist};
use nanobound_runner::{
    grid_map_cached, monte_carlo_fingerprint, monte_carlo_sharded, monte_carlo_sharded_cached,
    ThreadPool,
};
use nanobound_sim::NoisyConfig;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nanobound_cache_corruption_{name}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn xor_chain() -> Netlist {
    let mut nl = Netlist::new("chain");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let mut node = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
    for _ in 0..4 {
        node = nl.add_gate(GateKind::Xor, &[node, a]).unwrap();
    }
    nl.add_output("y", node).unwrap();
    nl
}

const PATTERNS: usize = 6_000;
const CHUNK: usize = 512; // 12 shards: 11 full + 1 tail

#[test]
fn truncated_entries_recompute_to_identical_results() {
    let dir = scratch("truncate");
    let cache = ShardCache::open(&dir).unwrap();
    let nl = xor_chain();
    let cfg = NoisyConfig::new(0.03, 5).unwrap();
    let pool = ThreadPool::new(2).unwrap();

    let cold =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 7, CHUNK, Some(&cache)).unwrap();
    let uncached = monte_carlo_sharded(&pool, &nl, &cfg, PATTERNS, 7, CHUNK).unwrap();
    assert_eq!(cold, uncached);

    // Truncate a few entries at different depths: empty file, inside
    // the header, inside the payload.
    let fp = monte_carlo_fingerprint(&nl, &cfg, PATTERNS, 7, CHUNK);
    for (shard, keep) in [(0u64, 0usize), (3, 9), (11, 40)] {
        let path = cache.entry_path(&fp, shard);
        let bytes = fs::read(&path).unwrap();
        assert!(keep < bytes.len());
        fs::write(&path, &bytes[..keep]).unwrap();
    }

    let before = cache.stats();
    let warm =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 7, CHUNK, Some(&cache)).unwrap();
    assert_eq!(warm, cold, "corruption changed the outcome");
    let after = cache.stats();
    assert_eq!(
        after.misses - before.misses,
        3,
        "3 damaged shards must miss"
    );
    assert_eq!(after.hits - before.hits, 9, "undamaged shards must hit");

    // The damaged entries were rewritten: a third run is all hits.
    let third =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 7, CHUNK, Some(&cache)).unwrap();
    assert_eq!(third, cold);
    assert_eq!(cache.stats().hits - after.hits, 12);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_entries_recompute_to_identical_results() {
    let dir = scratch("bitflip");
    let cache = ShardCache::open(&dir).unwrap();
    let nl = xor_chain();
    let cfg = NoisyConfig::new(0.08, 21).unwrap();
    let pool = ThreadPool::serial();

    let cold =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 9, CHUNK, Some(&cache)).unwrap();

    // Flip one bit in every entry — header bytes, checksum bytes and
    // payload bytes alike.
    let fp = monte_carlo_fingerprint(&nl, &cfg, PATTERNS, 9, CHUNK);
    let shards = PATTERNS.div_ceil(CHUNK) as u64;
    for shard in 0..shards {
        let path = cache.entry_path(&fp, shard);
        let mut bytes = fs::read(&path).unwrap();
        let target = (shard as usize * 7) % bytes.len();
        bytes[target] ^= 1 << (shard % 8);
        fs::write(&path, &bytes).unwrap();
    }

    let before = cache.stats();
    let warm =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 9, CHUNK, Some(&cache)).unwrap();
    assert_eq!(warm, cold, "bit flips changed the outcome");
    assert_eq!(
        cache.stats().misses - before.misses,
        shards,
        "every flipped entry must be rejected"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_and_oversized_entries_never_panic() {
    let dir = scratch("garbage");
    let cache = ShardCache::open(&dir).unwrap();
    let nl = xor_chain();
    let cfg = NoisyConfig::new(0.05, 3).unwrap();
    let pool = ThreadPool::serial();
    let fp = monte_carlo_fingerprint(&nl, &cfg, PATTERNS, 4, CHUNK);

    // Pre-seed hostile entries before any run: random noise, a valid
    // frame around garbage, an entry claiming an absurd payload length.
    fs::create_dir_all(cache.entry_path(&fp, 0).parent().unwrap()).unwrap();
    fs::write(cache.entry_path(&fp, 0), b"not a cache entry at all").unwrap();
    cache.store(&fp, 1, b"valid frame, invalid NoisyTally payload");
    let mut oversized = b"NBSC".to_vec();
    oversized.extend_from_slice(&1u32.to_le_bytes());
    oversized.extend_from_slice(&u64::MAX.to_le_bytes());
    oversized.extend_from_slice(&[0u8; 16]);
    fs::write(cache.entry_path(&fp, 2), &oversized).unwrap();

    let out =
        monte_carlo_sharded_cached(&pool, &nl, &cfg, PATTERNS, 4, CHUNK, Some(&cache)).unwrap();
    let reference = monte_carlo_sharded(&pool, &nl, &cfg, PATTERNS, 4, CHUNK).unwrap();
    assert_eq!(out, reference);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn grid_cells_survive_corruption_bit_identically() {
    let dir = scratch("grid");
    let cache = ShardCache::open(&dir).unwrap();
    let fp = FingerprintBuilder::new("corruption-grid").finish();
    let xs: Vec<f64> = (0..40).map(|i| f64::from(i) * 0.17).collect();
    let f = |x: &f64| vec![x.sin(), x.exp(), x.sqrt()];
    let pool = ThreadPool::new(3).unwrap();

    let cold = grid_map_cached(&pool, &xs, &fp, Some(&cache), f);

    // Truncate one cell, flip a bit in another, delete a third.
    let truncate = cache.entry_path(&fp, 5);
    let bytes = fs::read(&truncate).unwrap();
    fs::write(&truncate, &bytes[..bytes.len() / 2]).unwrap();
    let flip = cache.entry_path(&fp, 17);
    let mut bytes = fs::read(&flip).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&flip, &bytes).unwrap();
    fs::remove_file(cache.entry_path(&fp, 33)).unwrap();

    let before = cache.stats();
    let warm = grid_map_cached(&pool, &xs, &fp, Some(&cache), f);
    assert_eq!(warm, cold, "corrupted grid cells changed the sweep");
    assert_eq!(cache.stats().misses - before.misses, 3);
    fs::remove_dir_all(&dir).unwrap();
}
