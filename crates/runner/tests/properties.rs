//! Property tests pinning the runner's determinism contract: for random
//! netlists, thread counts 1/2/4/8 and arbitrary chunk sizes, the
//! parallel engines return results bit-identical to the serial engine.

use proptest::prelude::*;

use nanobound_core::size::redundancy_lower_bound;
use nanobound_core::sweep;
use nanobound_gen::random::{random_dag, RandomDagConfig};
use nanobound_runner::{grid_map, monte_carlo_sharded, try_grid_map, ThreadPool};
use nanobound_sim::NoisyConfig;

/// The thread counts the issue contract names explicitly.
const JOBS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_monte_carlo_is_jobs_invariant(
        (inputs, gates, outputs) in (2usize..8, 5usize..40, 1usize..4),
        max_fanin in prop::sample::select(vec![2usize, 3, 4]),
        dag_seed in any::<u64>(),
        epsilon in 0.0..=1.0f64,
        noise_seed in any::<u64>(),
        pattern_seed in any::<u64>(),
        patterns in 2usize..400,
        chunk in 1usize..128,
    ) {
        let netlist = random_dag(&RandomDagConfig {
            inputs,
            gates,
            max_fanin,
            outputs,
            seed: dag_seed,
        })
        .expect("valid random DAG parameters");
        let config = NoisyConfig::new(epsilon, noise_seed).expect("epsilon in [0, 1]");

        let reference = monte_carlo_sharded(
            &ThreadPool::serial(), &netlist, &config, patterns, pattern_seed, chunk,
        )
        .expect("serial reference run");
        for jobs in JOBS {
            let pool = ThreadPool::new(jobs).expect("supported worker count");
            let out = monte_carlo_sharded(
                &pool, &netlist, &config, patterns, pattern_seed, chunk,
            )
            .expect("parallel run");
            // NoisyOutcome is all f64 rates: PartialEq here means the
            // merged tallies rounded identically, i.e. bit-identity.
            prop_assert_eq!(
                &out, &reference,
                "jobs={} patterns={} chunk={}", jobs, patterns, chunk
            );
        }
    }

    #[test]
    fn grid_map_is_jobs_invariant(
        lo in 0.005f64..0.2,
        span in 0.01f64..0.29,
        points in 2usize..200,
    ) {
        // A real bound evaluation, not a toy closure: transcendental
        // enough that any accidental reordering of the arithmetic would
        // show up in the low bits.
        let eps_grid = sweep::linspace(lo, lo + span, points);
        let f = |&eps: &f64| redundancy_lower_bound(10.0, 3.0, eps, 0.01).expect("in range");
        let reference = sweep::grid_map(&eps_grid, f);
        for jobs in JOBS {
            let pool = ThreadPool::new(jobs).expect("supported worker count");
            prop_assert_eq!(
                grid_map(&pool, &eps_grid, f),
                reference.clone(),
                "jobs={} points={}", jobs, points
            );
        }
    }

    #[test]
    fn try_grid_map_fails_on_the_same_point_for_every_worker_count(
        points in 1usize..150,
        fail_stride in 2usize..20,
        offset in 0usize..20,
    ) {
        let xs: Vec<usize> = (0..points).collect();
        let f = |&x: &usize| -> Result<usize, usize> {
            if x >= offset && (x - offset) % fail_stride == 0 {
                Err(x)
            } else {
                Ok(x * 3)
            }
        };
        let reference: Result<Vec<usize>, usize> = xs.iter().map(f).collect();
        for jobs in JOBS {
            let pool = ThreadPool::new(jobs).expect("supported worker count");
            prop_assert_eq!(
                try_grid_map(&pool, &xs, f),
                reference.clone(),
                "jobs={}", jobs
            );
        }
    }

    #[test]
    fn map_indexed_is_an_identity_schedule(
        n in 0usize..500,
        jobs in 1usize..12,
    ) {
        let pool = ThreadPool::new(jobs).expect("supported worker count");
        let out = pool.map_indexed(n, |i| i);
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}
