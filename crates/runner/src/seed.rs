//! Deterministic per-shard seed derivation.
//!
//! Every parallel entry point of this crate splits its work into shards
//! whose random streams must be (a) statistically independent of each
//! other and (b) a pure function of the *master* seed and the shard
//! index — never of the worker that happens to execute the shard. That
//! is what makes `--jobs N` byte-identical to `--jobs 1`.
//!
//! **Stability contract:** the mixing function below is frozen. Golden
//! figure CSVs committed under `tests/golden/` and every recorded
//! experiment seed depend on it; changing it is a breaking change of the
//! workspace's reproducibility surface.

/// Derives the seed of shard `shard` from a master seed.
///
/// The construction feeds `master` and `shard` through two rounds of the
/// SplitMix64 finalizer (the same mixer `rand::rngs::StdRng` uses for
/// seeding), so shard seeds are decorrelated even for adjacent shard
/// indices and adjacent master seeds. `shard_seed(m, a) == shard_seed(m, b)`
/// only if `a == b`.
///
/// # Examples
///
/// ```
/// use nanobound_runner::shard_seed;
///
/// assert_eq!(shard_seed(42, 3), shard_seed(42, 3));
/// assert_ne!(shard_seed(42, 3), shard_seed(42, 4));
/// assert_ne!(shard_seed(42, 3), shard_seed(43, 3));
/// ```
#[must_use]
pub fn shard_seed(master: u64, shard: u64) -> u64 {
    // Weyl-sequence offset keeps (master, shard) pairs on distinct
    // lattice points before mixing.
    let mut z = master ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn frozen_reference_values() {
        // Pinned outputs: these exact values underwrite the golden CSVs.
        // If this test fails, the mixing function changed — revert it.
        assert_eq!(shard_seed(0, 0), 0xa706_dd2f_4d19_7e6f);
        assert_eq!(shard_seed(0xBEEF, 1), 0xfe18_acc9_c3af_5200);
        assert_eq!(shard_seed(u64::MAX, u64::MAX), 0x7f46_a57c_92db_ee5f);
    }

    #[test]
    fn no_collisions_over_a_dense_grid() {
        let mut seen = HashSet::new();
        for master in 0..64u64 {
            for shard in 0..256u64 {
                assert!(
                    seen.insert(shard_seed(master, shard)),
                    "collision at master={master} shard={shard}"
                );
            }
        }
    }

    #[test]
    fn adjacent_shards_differ_in_many_bits() {
        for shard in 0..1000u64 {
            let a = shard_seed(7, shard);
            let b = shard_seed(7, shard + 1);
            let flipped = (a ^ b).count_ones();
            assert!(flipped >= 8, "only {flipped} bits differ at shard {shard}");
        }
    }
}
