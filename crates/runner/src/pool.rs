//! A std-only work-stealing thread pool for index-addressed task sets.
//!
//! The executor runs a *known, finite* set of tasks `0..n` — Monte-Carlo
//! chunks, sweep grid points, benchmark profiles. That closed-world
//! assumption keeps the scheduler small: tasks are dealt into one deque
//! per worker up front, each worker drains its own deque from the front
//! and steals from the back of its neighbours' when it runs dry, and the
//! pool is done when every deque is empty (no task ever enqueues another
//! task, so an empty sweep means termination).
//!
//! Determinism: results are addressed by task index, never by completion
//! order, so the output of [`ThreadPool::map_indexed`] is a pure function
//! of the closure — identical for any worker count and any steal
//! interleaving.
//!
//! For *open* task sets — jobs that stream in one at a time, as from a
//! serve session — [`ThreadPool::dispatch_scope`] runs a scoped worker
//! crew over a bounded admission queue with explicit overload reporting
//! ([`Dispatcher::try_submit`]). Ordering of results is the caller's
//! concern there; the crew only guarantees every admitted job runs
//! exactly once.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Condvar, Mutex};

use crate::error::RunnerError;

/// Hard ceiling on the worker count.
///
/// Far above any sensible hardware concurrency; it exists so an absurd
/// `--jobs 1000000` is rejected as a configuration error instead of
/// exhausting the OS thread limit.
pub const MAX_JOBS: usize = 512;

/// A deterministic parallel executor with a fixed worker budget.
///
/// Workers are scoped to each [`map_indexed`](ThreadPool::map_indexed)
/// call (spawned on entry, joined before return): the pool holds no
/// global state, cannot leak threads and cannot be poisoned by a
/// panicking task — the panic is propagated to the caller instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    jobs: NonZeroUsize,
}

impl ThreadPool {
    /// Creates a pool running at most `jobs` tasks concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::BadJobs`] unless `1 <= jobs <= MAX_JOBS`.
    pub fn new(jobs: usize) -> Result<Self, RunnerError> {
        match NonZeroUsize::new(jobs) {
            Some(n) if jobs <= MAX_JOBS => Ok(ThreadPool { jobs: n }),
            _ => Err(RunnerError::BadJobs {
                got: jobs,
                max: MAX_JOBS,
            }),
        }
    }

    /// The single-worker pool — the serial reference engine every
    /// parallel result must be byte-identical to.
    #[must_use]
    pub fn serial() -> Self {
        ThreadPool {
            jobs: NonZeroUsize::MIN,
        }
    }

    /// A pool sized to the host's available parallelism (1 when the OS
    /// cannot report it).
    #[must_use]
    pub fn auto() -> Self {
        let jobs = std::thread::available_parallelism()
            .map_or(1, NonZeroUsize::get)
            .min(MAX_JOBS);
        ThreadPool::new(jobs).expect("clamped into range")
    }

    /// The configured worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs.get()
    }

    /// Evaluates `f` over every index in `0..n`, returning the results
    /// in index order.
    ///
    /// The schedule (which worker runs which index, steal order) is
    /// nondeterministic; the returned vector is not — element `i` is
    /// always `f(i)`.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_indexed_init(n, || (), |(), i| f(i)).0
    }

    /// Like [`ThreadPool::map_indexed`], but each worker carries a
    /// private state created by `init` — reusable scratch buffers,
    /// running accumulators — threaded through every task that worker
    /// executes.
    ///
    /// Returns the task results in index order plus the final worker
    /// states. **Which tasks fed which state is scheduling-dependent**
    /// (work stealing), so states are only deterministic in aggregate:
    /// fold them with an operation that is associative and commutative
    /// (integer tally merges qualify) or treat them as caches.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `init` or `f`.
    pub fn map_indexed_init<S, T, I, F>(&self, n: usize, init: I, f: F) -> (Vec<T>, Vec<S>)
    where
        S: Send,
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let workers = self.jobs.get().min(n);
        if workers <= 1 {
            let mut state = init();
            let results = (0..n).map(|i| f(&mut state, i)).collect();
            return (results, vec![state]);
        }

        // Deal contiguous index runs, one deque per worker: run w gets
        // [w*n/workers, (w+1)*n/workers) — balanced to within one task.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
            .collect();

        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut states: Vec<S> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut state = init();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        while let Some(i) = next_task(queues, w) {
                            local.push((i, f(&mut state, i)));
                        }
                        (local, state)
                    })
                })
                .collect();
            for handle in handles {
                // join() returns Err only when the worker panicked;
                // resume the panic on the caller's thread.
                let (local, state) = handle
                    .join()
                    .unwrap_or_else(|e| std::panic::resume_unwind(e));
                for (i, value) in local {
                    slots[i] = Some(value);
                }
                states.push(state);
            }
        });
        let results = slots
            .into_iter()
            .map(|s| s.expect("every index 0..n was dealt exactly once"))
            .collect();
        (results, states)
    }

    /// Runs `body` with a crew of [`jobs`](ThreadPool::jobs) workers
    /// draining a bounded admission queue of streamed jobs.
    ///
    /// Unlike [`map_indexed`](ThreadPool::map_indexed) the task set is
    /// *open*: `body` submits jobs as they arrive (a serve session
    /// reading requests off a socket) via [`Dispatcher::try_submit`],
    /// and a full queue hands the job back instead of blocking — the
    /// submitter answers overload in-band. When `body` returns, the
    /// queue is closed and drained: every admitted job runs exactly
    /// once before `dispatch_scope` returns. Workers are scoped to the
    /// call, like every other pool entry point — no detached threads.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside a job.
    pub fn dispatch_scope<'env, R>(
        &self,
        capacity: usize,
        body: impl FnOnce(&Dispatcher<'env>) -> R,
    ) -> R {
        let dispatcher = Dispatcher::new(capacity);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.jobs.get())
                .map(|_| {
                    let dispatcher = &dispatcher;
                    scope.spawn(move || dispatcher.work())
                })
                .collect();
            let out = body(&dispatcher);
            dispatcher.close();
            for handle in handles {
                handle
                    .join()
                    .unwrap_or_else(|e| std::panic::resume_unwind(e));
            }
            out
        })
    }
}

/// A boxed unit of streamed work; see [`ThreadPool::dispatch_scope`].
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// The bounded admission queue of one [`ThreadPool::dispatch_scope`]
/// crew. Holds at most `capacity` not-yet-started jobs; admission
/// beyond that is refused, never blocked on.
pub struct Dispatcher<'env> {
    state: Mutex<DispatchQueue<'env>>,
    wake: Condvar,
    capacity: usize,
}

struct DispatchQueue<'env> {
    jobs: VecDeque<Job<'env>>,
    closed: bool,
}

impl std::fmt::Debug for Dispatcher<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("capacity", &self.capacity)
            .field("queued", &self.queued())
            .finish_non_exhaustive()
    }
}

impl<'env> Dispatcher<'env> {
    fn new(capacity: usize) -> Self {
        Dispatcher {
            state: Mutex::new(DispatchQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Submits one job, or hands it back when the queue is at capacity
    /// so the caller can answer the overload in-band.
    ///
    /// # Errors
    ///
    /// Returns the job itself when the queue is full.
    pub fn try_submit<F>(&self, job: F) -> Result<(), F>
    where
        F: FnOnce() + Send + 'env,
    {
        let mut state = self.state.lock().expect("dispatch queue lock");
        if state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.wake.notify_one();
        Ok(())
    }

    /// The number of admitted jobs not yet picked up by a worker.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.state.lock().expect("dispatch queue lock").jobs.len()
    }

    /// Closes admission; workers drain the remaining queue and exit.
    fn close(&self) {
        self.state.lock().expect("dispatch queue lock").closed = true;
        self.wake.notify_all();
    }

    /// One worker's loop: run jobs until the queue is closed *and* dry.
    fn work(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("dispatch queue lock");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break Some(job);
                    }
                    if state.closed {
                        break None;
                    }
                    state = self.wake.wait(state).expect("dispatch queue lock");
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

/// Pops the next task for worker `w`: front of its own deque, else a
/// steal from the back of the first non-empty neighbour.
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rejects_zero_and_absurd_worker_counts() {
        assert!(matches!(
            ThreadPool::new(0),
            Err(RunnerError::BadJobs { got: 0, .. })
        ));
        assert!(ThreadPool::new(MAX_JOBS).is_ok());
        assert!(ThreadPool::new(MAX_JOBS + 1).is_err());
        assert!(ThreadPool::new(usize::MAX).is_err());
    }

    #[test]
    fn results_are_in_index_order_for_every_worker_count() {
        for jobs in [1, 2, 3, 4, 8, 17] {
            let pool = ThreadPool::new(jobs).unwrap();
            let out = pool.map_indexed(100, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ThreadPool::new(4).unwrap();
        let counter = AtomicUsize::new(0);
        let out = pool.map_indexed(1000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn skewed_task_durations_still_complete() {
        // One pathological long task at index 0 forces the other workers
        // to steal the rest of worker 0's deque.
        let pool = ThreadPool::new(4).unwrap();
        let out = pool.map_indexed(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_task_sets() {
        let pool = ThreadPool::new(8).unwrap();
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map_indexed(1, |i| i + 7), vec![7]);
        assert_eq!(pool.map_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let pool = ThreadPool::new(32).unwrap();
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn task_panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(4).unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.map_indexed(16, |i| {
                assert!(i != 9, "task nine exploded");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn per_worker_states_cover_every_task_exactly_once() {
        for jobs in [1usize, 4, 9] {
            let pool = ThreadPool::new(jobs).unwrap();
            let (results, states) = pool.map_indexed_init(
                100,
                || 0usize,
                |tasks_seen, i| {
                    *tasks_seen += 1;
                    i * 3
                },
            );
            assert_eq!(results, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            assert!(states.len() <= jobs, "jobs={jobs}");
            assert_eq!(states.iter().sum::<usize>(), 100, "jobs={jobs}");
        }
        let pool = ThreadPool::new(4).unwrap();
        let (results, states) = pool.map_indexed_init(0, || 1u8, |_, i| i);
        assert!(results.is_empty());
        assert!(states.is_empty());
    }

    #[test]
    fn dispatch_scope_runs_every_admitted_job_exactly_once() {
        for jobs in [1usize, 2, 8] {
            let pool = ThreadPool::new(jobs).unwrap();
            let counter = AtomicUsize::new(0);
            pool.dispatch_scope(16, |crew| {
                for _ in 0..100 {
                    let mut job = Some(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                    // A full queue hands the job back; retry until the
                    // crew drains a slot.
                    while let Err(returned) = crew.try_submit(job.take().unwrap()) {
                        job = Some(returned);
                        std::thread::yield_now();
                    }
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 100, "jobs={jobs}");
        }
    }

    #[test]
    fn full_queue_refuses_instead_of_blocking() {
        use std::sync::mpsc;
        let pool = ThreadPool::new(1).unwrap();
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let ran = AtomicUsize::new(0);
        pool.dispatch_scope(2, |crew| {
            assert!(crew
                .try_submit(move || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                })
                .is_ok());
            // The single worker now holds the first job; the queue is
            // empty and admits exactly `capacity` more.
            started_rx.recv().unwrap();
            assert!(crew.try_submit(|| {}).is_ok());
            assert!(crew
                .try_submit(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                })
                .is_ok());
            assert_eq!(crew.queued(), 2);
            assert!(
                crew.try_submit(|| {}).is_err(),
                "the third pending job must be refused, not queued"
            );
            release_tx.send(()).unwrap();
        });
        // Close-then-drain: the admitted jobs all ran.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dispatch_job_panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(2).unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.dispatch_scope(8, |crew| {
                let _ = crew.try_submit(|| panic!("job exploded"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn auto_and_serial_are_valid() {
        assert_eq!(ThreadPool::serial().jobs(), 1);
        let auto = ThreadPool::auto();
        assert!((1..=MAX_JOBS).contains(&auto.jobs()));
    }
}
