//! Parallel parameter-grid evaluation.
//!
//! The parallel counterparts of [`nanobound_core::sweep::grid_map`]
//! (re-implemented here without the `core` dependency): grid points are
//! sharded across the pool's workers and the results returned in grid
//! order, so the output is byte-identical to a serial left-to-right
//! evaluation for any worker count.

use crate::pool::ThreadPool;

/// Evaluates `f` over every grid point, in parallel, preserving order.
///
/// Deterministic: element `i` of the result is always `f(&xs[i])`,
/// regardless of the pool's worker count or the steal schedule — the
/// parallel equivalent of `xs.iter().map(f).collect()`.
///
/// # Examples
///
/// ```
/// use nanobound_runner::{grid_map, ThreadPool};
///
/// let xs = [1.0, 2.0, 3.0];
/// let squares = grid_map(&ThreadPool::serial(), &xs, |x| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// ```
pub fn grid_map<X, T, F>(pool: &ThreadPool, xs: &[X], f: F) -> Vec<T>
where
    X: Sync,
    T: Send,
    F: Fn(&X) -> T + Sync,
{
    pool.map_indexed(xs.len(), |i| f(&xs[i]))
}

/// Like [`grid_map`] for fallible point evaluators: returns the values
/// in grid order, or the error of the *lowest-indexed* failing point.
///
/// Every point is evaluated (workers do not abort each other), but the
/// reported error is chosen by grid position, not completion order, so
/// failures are as deterministic as successes.
///
/// # Errors
///
/// Returns the error produced at the first (by index) failing grid
/// point.
pub fn try_grid_map<X, T, E, F>(pool: &ThreadPool, xs: &[X], f: F) -> Result<Vec<T>, E>
where
    X: Sync,
    T: Send,
    E: Send,
    F: Fn(&X) -> Result<T, E> + Sync,
{
    pool.map_indexed(xs.len(), |i| f(&xs[i]))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_map() {
        let xs: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.125).collect();
        let f = |x: &f64| (x.sin() * 1e6).round();
        let serial: Vec<f64> = xs.iter().map(f).collect();
        for jobs in [1, 2, 4, 8] {
            let pool = ThreadPool::new(jobs).unwrap();
            assert_eq!(grid_map(&pool, &xs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn try_grid_map_collects_successes() {
        let pool = ThreadPool::new(4).unwrap();
        let xs = [1u64, 2, 3, 4];
        let out: Result<Vec<u64>, &str> = try_grid_map(&pool, &xs, |&x| Ok(x * 10));
        assert_eq!(out.unwrap(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn try_grid_map_reports_the_lowest_indexed_error() {
        let pool = ThreadPool::new(8).unwrap();
        let xs: Vec<usize> = (0..64).collect();
        let out: Result<Vec<usize>, usize> =
            try_grid_map(&pool, &xs, |&x| if x % 10 == 3 { Err(x) } else { Ok(x) });
        // Both 3, 13, 23, ... fail; the error must be the earliest.
        assert_eq!(out.unwrap_err(), 3);
    }

    #[test]
    fn empty_grid_yields_empty_vec() {
        let pool = ThreadPool::new(4).unwrap();
        let xs: [f64; 0] = [];
        assert!(grid_map(&pool, &xs, |x| *x).is_empty());
    }
}
