//! Runner errors.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring the parallel executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunnerError {
    /// A worker count outside the supported `1..=MAX_JOBS` range was
    /// requested.
    BadJobs {
        /// The requested worker count.
        got: usize,
        /// Largest supported worker count ([`crate::pool::MAX_JOBS`]).
        max: usize,
    },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::BadJobs { got, max } => {
                write!(f, "jobs = {got} unsupported: must lie in 1..={max}")
            }
        }
    }
}

impl Error for RunnerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_bounds() {
        let e = RunnerError::BadJobs { got: 0, max: 512 };
        let s = e.to_string();
        assert!(s.contains("jobs = 0") && s.contains("512"), "{s}");
    }
}
