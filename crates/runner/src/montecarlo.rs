//! Chunked, deterministic parallel Monte-Carlo for noisy simulation.
//!
//! A `patterns`-trial experiment is split into fixed-size chunks. Chunk
//! `i` draws its input patterns and fault masks from RNGs seeded with
//! [`shard_seed`]`(seed, i)` — a pure function of the master seeds and
//! the chunk index — and produces an integer
//! [`NoisyTally`](nanobound_sim::NoisyTally). Tallies are merged with
//! plain integer addition, so the final outcome depends only on
//! `(netlist, config, patterns, pattern_seed, chunk)`, never on the
//! worker count or the steal schedule: `--jobs N` is byte-identical to
//! `--jobs 1`.
//!
//! The chunk size is part of the experiment's identity (it fixes the
//! RNG stream layout and the set of observed pattern transitions), so
//! callers that want reproducible artifacts must hold it constant —
//! [`DEFAULT_CHUNK`] is the workspace-wide convention.

use nanobound_logic::Netlist;
use nanobound_sim::{NoisyConfig, NoisyOutcome, SimError};

use crate::cached::monte_carlo_sharded_cached;
use crate::pool::ThreadPool;

/// Workspace-wide default Monte-Carlo chunk size (patterns per shard).
///
/// 4096 patterns = 64 machine words per signal: large enough that the
/// per-chunk topological pass dominates scheduling overhead, small
/// enough that 8+ workers stay busy on the 10⁴–10⁵-trial runs the
/// experiments use.
pub const DEFAULT_CHUNK: usize = 4096;

/// Runs the paired clean/noisy Monte-Carlo experiment over `patterns`
/// random vectors, split into `chunk`-sized shards executed on `pool`.
///
/// Identical arguments produce a bit-identical [`NoisyOutcome`] for
/// every pool size. The result is *not* the same stream as the serial
/// [`nanobound_sim::monte_carlo`] (which draws one unbroken RNG
/// sequence); the chunked layout is its own reproducibility contract.
///
/// # Errors
///
/// Returns [`SimError::BadParameter`] if `patterns < 2` or `chunk == 0`,
/// and propagates simulation failures (input-count mismatches) from the
/// shards.
///
/// # Examples
///
/// ```
/// use nanobound_gen::parity;
/// use nanobound_runner::{monte_carlo_sharded, ThreadPool, DEFAULT_CHUNK};
/// use nanobound_sim::NoisyConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tree = parity::parity_tree(8, 2)?;
/// let config = NoisyConfig::new(0.01, 7)?;
/// let serial = monte_carlo_sharded(
///     &ThreadPool::serial(), &tree, &config, 20_000, 11, DEFAULT_CHUNK)?;
/// let par = monte_carlo_sharded(
///     &ThreadPool::new(4)?, &tree, &config, 20_000, 11, DEFAULT_CHUNK)?;
/// assert_eq!(serial, par);
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_sharded(
    pool: &ThreadPool,
    netlist: &Netlist,
    config: &NoisyConfig,
    patterns: usize,
    pattern_seed: u64,
    chunk: usize,
) -> Result<NoisyOutcome, SimError> {
    // One sharding pipeline for cached and uncached execution: the
    // cache-aware sibling with `cache: None` performs no cache traffic,
    // so the two entry points cannot drift apart.
    monte_carlo_sharded_cached(pool, netlist, config, patterns, pattern_seed, chunk, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobound_logic::{GateKind, Netlist as Nl};

    fn xor_pair() -> Nl {
        let mut nl = Nl::new("xp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[a, g1]).unwrap();
        nl.add_output("y1", g1).unwrap();
        nl.add_output("y2", g2).unwrap();
        nl
    }

    #[test]
    fn jobs_do_not_change_the_outcome() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let reference =
            monte_carlo_sharded(&ThreadPool::serial(), &nl, &cfg, 10_000, 19, 512).unwrap();
        for jobs in [2, 3, 4, 8] {
            let pool = ThreadPool::new(jobs).unwrap();
            let out = monte_carlo_sharded(&pool, &nl, &cfg, 10_000, 19, 512).unwrap();
            assert_eq!(out, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn chunk_size_is_part_of_the_contract() {
        // Different chunkings lay out the RNG streams differently: the
        // outcomes are statistically equivalent but not bitwise equal.
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let a = monte_carlo_sharded(&pool, &nl, &cfg, 10_000, 19, 512).unwrap();
        let b = monte_carlo_sharded(&pool, &nl, &cfg, 10_000, 19, 1024).unwrap();
        assert_ne!(a, b);
        assert!((a.circuit_error_rate - b.circuit_error_rate).abs() < 0.02);
    }

    #[test]
    fn statistics_match_the_unsharded_engine() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.1, 3).unwrap();
        let sharded =
            monte_carlo_sharded(&ThreadPool::new(4).unwrap(), &nl, &cfg, 100_000, 5, 4096).unwrap();
        let plain = nanobound_sim::monte_carlo(&nl, &cfg, 100_000, 5).unwrap();
        assert!(
            (sharded.circuit_error_rate - plain.circuit_error_rate).abs() < 0.01,
            "sharded {} vs plain {}",
            sharded.circuit_error_rate,
            plain.circuit_error_rate
        );
        assert!((sharded.noisy_avg_gate_activity - plain.noisy_avg_gate_activity).abs() < 0.01);
    }

    #[test]
    fn tail_chunk_shorter_than_chunk_size_is_handled() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.2, 1).unwrap();
        // 10 patterns in chunks of 3: shards of 3, 3, 3, 1.
        let out = monte_carlo_sharded(&ThreadPool::new(2).unwrap(), &nl, &cfg, 10, 2, 3).unwrap();
        assert_eq!(out.patterns, 10);
        let serial = monte_carlo_sharded(&ThreadPool::serial(), &nl, &cfg, 10, 2, 3).unwrap();
        assert_eq!(out, serial);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.1, 0).unwrap();
        let pool = ThreadPool::serial();
        assert!(monte_carlo_sharded(&pool, &nl, &cfg, 1, 0, 64).is_err());
        assert!(monte_carlo_sharded(&pool, &nl, &cfg, 100, 0, 0).is_err());
    }
}
