//! The shard plan: the unit of relocatable Monte-Carlo work.
//!
//! A [`ShardPlan`] is the frozen division of one experiment's
//! `patterns` trials into `chunk`-sized shards. Each shard's random
//! streams are pure functions of `(master seed, shard index)` (via
//! [`shard_seed`]) and its tally merges by integer addition, so a shard
//! is *relocatable*: it can be computed by any worker of any process on
//! any machine and the merged outcome is bit-identical. That property
//! is what `nanobound cluster` distributes — a coordinator hands
//! [`ShardRange`]s to remote workers and merges whatever comes back, in
//! whatever order, without ever re-deriving a different result.
//!
//! [`monte_carlo_shard_tallies`] computes the per-shard tallies of one
//! range — the worker side of the cluster protocol and the common
//! engine under [`monte_carlo_sharded_cached_programs`]'s merged
//! variant. [`tally_admissible`] is the single admission predicate for
//! tallies arriving from *outside* the live computation (cache entries,
//! remote workers): both paths cross-check against the live netlist
//! before merging, so a fingerprint collision or a corrupt worker can
//! force a recompute but never a panic.
//!
//! [`monte_carlo_sharded_cached_programs`]: crate::monte_carlo_sharded_cached_programs

use std::sync::Arc;

use nanobound_cache::ShardCache;
use nanobound_logic::Netlist;
use nanobound_sim::{
    monte_carlo_tally, EngineKind, NoisyConfig, NoisyTally, ProgramCache, ShardSpec, SimError,
    SimProgram,
};

use crate::cached::monte_carlo_fingerprint;
use crate::pool::ThreadPool;
use crate::seed::shard_seed;

/// The frozen division of `patterns` trials into `chunk`-sized shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    patterns: usize,
    chunk: usize,
}

impl ShardPlan {
    /// Validates and freezes a plan.
    ///
    /// # Errors
    ///
    /// `patterns` must be at least 2 and `chunk` at least 1 — the same
    /// bounds every sharded Monte-Carlo entry point enforces.
    pub fn new(patterns: usize, chunk: usize) -> Result<Self, SimError> {
        if patterns < 2 {
            return Err(SimError::bad("patterns", patterns, "must be at least 2"));
        }
        if chunk == 0 {
            return Err(SimError::bad("chunk", chunk, "must be at least 1"));
        }
        Ok(ShardPlan { patterns, chunk })
    }

    /// Total trials of the experiment.
    #[must_use]
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Trials per full shard.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Number of shards (the last one may be short).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.patterns.div_ceil(self.chunk)
    }

    /// Trials of shard `shard` (< [`ShardPlan::shard_count`]).
    #[must_use]
    pub fn shard_patterns(&self, shard: usize) -> usize {
        self.chunk.min(self.patterns - shard * self.chunk)
    }

    /// Splits the whole plan into contiguous ranges of at most `batch`
    /// shards — the distribution granularity of the cluster
    /// coordinator.
    #[must_use]
    pub fn batches(&self, batch: usize) -> Vec<ShardRange> {
        let batch = batch.max(1);
        let shards = self.shard_count();
        (0..shards.div_ceil(batch))
            .map(|g| ShardRange {
                first: g * batch,
                last: ((g + 1) * batch).min(shards),
            })
            .collect()
    }
}

/// A half-open range `[first, last)` of shard indices — the unit of
/// work a cluster coordinator hands out and re-queues.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// First shard index of the range.
    pub first: usize,
    /// One past the last shard index.
    pub last: usize,
}

impl ShardRange {
    /// Number of shards in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.last.saturating_sub(self.first)
    }

    /// Whether the range holds no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.last <= self.first
    }
}

/// Whether a tally that arrived from outside the live computation (a
/// cache entry, a remote worker) is admissible as shard result for a
/// `len`-trial shard of `netlist`.
///
/// The check guards the merge: [`NoisyTally::merge`] asserts matching
/// gate and output counts, so an inadmissible tally must be treated as
/// a miss (cache) or a counted worker failure (cluster), never merged.
#[must_use]
pub fn tally_admissible(netlist: &Netlist, tally: &NoisyTally, len: usize) -> bool {
    tally.patterns == len
        && tally.gates == netlist.gate_count()
        && tally.per_output_errors.len() == netlist.output_count()
}

/// Computes the per-shard tallies of `range` under `plan` — the worker
/// side of the cluster protocol.
///
/// Each returned tally is the bit-exact result of its shard, identical
/// to what any other process (or the merged single-process pipeline)
/// derives for the same `(config, pattern_seed, plan)` — shards are
/// relocatable by construction. With a cache, shards are served from /
/// written to the **same fingerprint** the merged pipeline uses, so a
/// cluster worker warms the cache for later local runs and vice versa;
/// the fingerprint stays pinned against concurrent GC for the duration.
///
/// The evaluation backend is resolved per call from `NANOBOUND_ENGINE`
/// ([`EngineKind::from_env`]); both backends produce bit-identical
/// tallies.
///
/// # Errors
///
/// Invalid ranges, simulation failures, and a configuration error for
/// an unrecognized `NANOBOUND_ENGINE` value. Cache failures degrade to
/// recomputation, never errors.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_shard_tallies(
    pool: &ThreadPool,
    netlist: &Netlist,
    config: &NoisyConfig,
    plan: &ShardPlan,
    pattern_seed: u64,
    range: ShardRange,
    cache: Option<&ShardCache>,
    programs: Option<&ProgramCache>,
) -> Result<Vec<NoisyTally>, SimError> {
    if range.first > range.last || range.last > plan.shard_count() {
        return Err(SimError::bad(
            "shard range",
            format!("{}..{}", range.first, range.last),
            "must lie inside the plan's shard count",
        ));
    }
    if range.is_empty() {
        return Ok(Vec::new());
    }
    let engine = EngineKind::from_env()?;
    let fingerprint = cache.map(|_| {
        monte_carlo_fingerprint(netlist, config, plan.patterns(), pattern_seed, plan.chunk())
    });
    // Pin the experiment while shards are loaded, computed and stored:
    // a concurrent GC sweep must not reclaim them under us.
    let _in_flight = match (cache, &fingerprint) {
        (Some(cache), Some(fingerprint)) => Some(cache.pin(*fingerprint)),
        _ => None,
    };
    let load_shard = |i: usize, len: usize| -> Option<NoisyTally> {
        let (cache, fingerprint) = (cache?, fingerprint.as_ref()?);
        let tally = cache.load_value::<NoisyTally>(fingerprint, i as u64)?;
        tally_admissible(netlist, &tally, len).then_some(tally)
    };

    if engine == EngineKind::Interp {
        return pool
            .map_indexed(range.len(), |j| {
                let i = range.first + j;
                let len = plan.shard_patterns(i);
                if let Some(tally) = load_shard(i, len) {
                    return Ok(tally);
                }
                let shard_config =
                    NoisyConfig::new(config.epsilon, shard_seed(config.seed, i as u64))?;
                let tally = monte_carlo_tally(
                    netlist,
                    &shard_config,
                    len,
                    shard_seed(pattern_seed, i as u64),
                )?;
                if let (Some(cache), Some(fingerprint)) = (cache, &fingerprint) {
                    cache.store_value(fingerprint, i as u64, &tally);
                }
                Ok(tally)
            })
            .into_iter()
            .collect();
    }

    // Compiled engine: misses within a group run through one batched
    // tape pass, exactly like the merged pipeline — batching changes
    // wall-clock, never counts (v2 fault-stream contract).
    let program: Arc<SimProgram> = match programs {
        Some(cache) => cache.get_or_compile(netlist),
        None => Arc::new(SimProgram::compile(netlist)),
    };
    let batch = program.preferred_batch(plan.chunk());
    let groups = range.len().div_ceil(batch);
    let (group_tallies, _workers) = pool.map_indexed_init(
        groups,
        || program.scratch(),
        |scratch, g| -> Result<Vec<NoisyTally>, SimError> {
            let first = range.first + g * batch;
            let last = (first + batch).min(range.last);
            let mut out: Vec<Option<NoisyTally>> = Vec::with_capacity(last - first);
            let mut specs = Vec::new();
            let mut miss_pos = Vec::new();
            for i in first..last {
                let len = plan.shard_patterns(i);
                if let Some(tally) = load_shard(i, len) {
                    out.push(Some(tally));
                } else {
                    miss_pos.push(i - first);
                    specs.push(ShardSpec {
                        fault_seed: shard_seed(config.seed, i as u64),
                        pattern_seed: shard_seed(pattern_seed, i as u64),
                        patterns: len,
                    });
                    out.push(None);
                }
            }
            if !specs.is_empty() {
                let mut fresh = vec![program.empty_tally(); specs.len()];
                program.run_tally_batch(scratch, config.epsilon, &specs, &mut fresh)?;
                for (&pos, tally) in miss_pos.iter().zip(fresh) {
                    if let (Some(cache), Some(fingerprint)) = (cache, &fingerprint) {
                        cache.store_value(fingerprint, (first + pos) as u64, &tally);
                    }
                    out[pos] = Some(tally);
                }
            }
            Ok(out
                .into_iter()
                .map(|t| t.expect("every slot is a hit or a computed miss"))
                .collect())
        },
    );
    let mut tallies = Vec::with_capacity(range.len());
    for group in group_tallies {
        tallies.extend(group?);
    }
    Ok(tallies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cached::monte_carlo_sharded_cached;
    use nanobound_logic::GateKind;

    fn xor_pair() -> Netlist {
        let mut nl = Netlist::new("xp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[a, g1]).unwrap();
        nl.add_output("y1", g1).unwrap();
        nl.add_output("y2", g2).unwrap();
        nl
    }

    #[test]
    fn plan_math_covers_every_pattern_exactly_once() {
        let plan = ShardPlan::new(10_000, 512).unwrap();
        assert_eq!(plan.shard_count(), 20);
        let total: usize = (0..plan.shard_count())
            .map(|i| plan.shard_patterns(i))
            .sum();
        assert_eq!(total, 10_000);
        assert_eq!(plan.shard_patterns(19), 10_000 - 19 * 512);
        assert!(ShardPlan::new(1, 512).is_err());
        assert!(ShardPlan::new(100, 0).is_err());
    }

    #[test]
    fn batches_tile_the_plan_contiguously() {
        let plan = ShardPlan::new(10_000, 512).unwrap();
        for batch in [1, 3, 7, 20, 100] {
            let batches = plan.batches(batch);
            assert_eq!(batches[0].first, 0, "batch={batch}");
            assert_eq!(batches.last().unwrap().last, plan.shard_count());
            for pair in batches.windows(2) {
                assert_eq!(pair[0].last, pair[1].first, "batch={batch}");
                assert!(pair[0].len() <= batch);
            }
        }
        // batch 0 is clamped, not a division by zero.
        assert_eq!(plan.batches(0).len(), plan.shard_count());
    }

    #[test]
    fn range_tallies_merge_to_the_single_process_outcome() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let plan = ShardPlan::new(10_000, 512).unwrap();
        let reference =
            monte_carlo_sharded_cached(&pool, &nl, &cfg, 10_000, 19, 512, None).unwrap();
        // Split the plan into uneven ranges, compute each independently
        // (as distinct cluster workers would), merge in a scrambled
        // order: bit-identical outcome.
        let mut merged: Option<NoisyTally> = None;
        for range in [
            ShardRange { first: 7, last: 20 },
            ShardRange { first: 0, last: 3 },
            ShardRange { first: 3, last: 7 },
        ] {
            let tallies =
                monte_carlo_shard_tallies(&pool, &nl, &cfg, &plan, 19, range, None, None).unwrap();
            assert_eq!(tallies.len(), range.len());
            for tally in &tallies {
                match &mut merged {
                    None => merged = Some(tally.clone()),
                    Some(total) => total.merge(tally),
                }
            }
        }
        assert_eq!(merged.unwrap().outcome(), reference);
    }

    #[test]
    fn range_tallies_are_admissible_and_cache_compatible() {
        let dir = std::env::temp_dir().join("nanobound_runner_shards_cache");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ShardCache::open(&dir).unwrap();
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let plan = ShardPlan::new(5_000, 512).unwrap();
        let range = ShardRange {
            first: 0,
            last: plan.shard_count(),
        };
        let tallies =
            monte_carlo_shard_tallies(&pool, &nl, &cfg, &plan, 19, range, Some(&cache), None)
                .unwrap();
        for (i, tally) in tallies.iter().enumerate() {
            assert!(tally_admissible(&nl, tally, plan.shard_patterns(i)));
            assert!(!tally_admissible(&nl, tally, plan.shard_patterns(i) + 1));
        }
        // The shards landed under the merged pipeline's fingerprint:
        // a whole-experiment cached run is now all hits.
        let warm =
            monte_carlo_sharded_cached(&pool, &nl, &cfg, 5_000, 19, 512, Some(&cache)).unwrap();
        let cold = monte_carlo_sharded_cached(&pool, &nl, &cfg, 5_000, 19, 512, None).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(cache.stats().hits as usize, plan.shard_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_ranges_error_and_empty_ranges_are_empty() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let plan = ShardPlan::new(5_000, 512).unwrap();
        let bad = ShardRange { first: 0, last: 99 };
        assert!(monte_carlo_shard_tallies(&pool, &nl, &cfg, &plan, 19, bad, None, None).is_err());
        let empty = ShardRange { first: 3, last: 3 };
        let tallies =
            monte_carlo_shard_tallies(&pool, &nl, &cfg, &plan, 19, empty, None, None).unwrap();
        assert!(tallies.is_empty());
    }
}
