//! Cache-aware variants of the parallel entry points.
//!
//! Every function here is the same pure computation as its uncached
//! sibling with one extra layer: before a shard is computed, the
//! [`ShardCache`] is consulted under a [`Fingerprint`] that captures the
//! complete experiment identity, and after a shard is computed its
//! result is written back. Because shard results are encoded bit-exactly
//! (integer tallies, `f64` bit patterns), a warm-cache run is
//! **byte-identical** to a cold run, to a `--no-cache` run and to
//! `--jobs 1` — the cache changes wall-clock time, never results.
//!
//! Passing `cache: None` makes every entry point identical to its
//! uncached sibling, so callers thread one optional through instead of
//! duplicating code paths.
//!
//! **Staleness and corruption.** The fingerprint hashes everything a
//! shard's result depends on (netlist structure, ε, master seeds, chunk
//! size, trial count, and the workspace [`FORMAT_VERSION`] salt), so a
//! parameter change addresses a different entry set instead of reading
//! stale data. Unreadable or corrupt entries are counted misses and
//! recomputed; decoded tallies are additionally cross-checked against
//! the live netlist before being merged, so even a fingerprint
//! collision cannot panic the merge.
//!
//! [`FORMAT_VERSION`]: nanobound_cache::FORMAT_VERSION

use std::sync::Arc;

use nanobound_cache::{CacheCodec, Fingerprint, ShardCache};
use nanobound_logic::Netlist;
use nanobound_sim::{
    monte_carlo_tally, EngineKind, NoisyConfig, NoisyOutcome, NoisyTally, ProgramCache, ShardSpec,
    SimError, SimProgram, SimScratch,
};

use crate::pool::ThreadPool;
use crate::seed::shard_seed;
use crate::shards::{tally_admissible, ShardPlan};

// Re-exported from `nanobound-sim`, where the layered fingerprints
// live so the compiled [`ProgramCache`] can address programs by the
// same structural identity the experiment caches use.
pub use nanobound_sim::{cone_fingerprints, experiment_builder, netlist_fingerprint};

/// The fingerprint under which [`monte_carlo_sharded_cached`] stores its
/// chunk tallies (exposed so tests can corrupt specific entries).
#[must_use]
pub fn monte_carlo_fingerprint(
    netlist: &Netlist,
    config: &NoisyConfig,
    patterns: usize,
    pattern_seed: u64,
    chunk: usize,
) -> Fingerprint {
    // `experiment_builder` is byte-identical to the manual
    // FingerprintBuilder + netlist_fingerprint sequence this function
    // used before, so existing on-disk entries keep their addresses.
    let mut builder = experiment_builder("monte-carlo", netlist);
    builder.push_f64(config.epsilon);
    builder.push_u64(config.seed);
    builder.push_usize(patterns);
    builder.push_u64(pattern_seed);
    builder.push_usize(chunk);
    builder.finish()
}

/// [`monte_carlo_sharded`] with chunk tallies served from / written to
/// `cache`.
///
/// The merged [`NoisyOutcome`] is bit-identical to the uncached variant
/// for every mix of hits and misses: cached [`NoisyTally`] chunks carry
/// the same integer counts a fresh simulation would produce, and the
/// merge is the same chunk-ordered integer addition.
///
/// # Errors
///
/// Same as [`monte_carlo_sharded`]; cache failures of any kind degrade
/// to recomputation and are never surfaced as errors.
///
/// # Examples
///
/// ```
/// use nanobound_cache::ShardCache;
/// use nanobound_gen::parity;
/// use nanobound_runner::{monte_carlo_sharded, monte_carlo_sharded_cached, ThreadPool};
/// use nanobound_sim::NoisyConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("nanobound-runner-doc-cache");
/// # std::fs::remove_dir_all(&dir).ok();
/// let cache = ShardCache::open(&dir)?;
/// let tree = parity::parity_tree(8, 2)?;
/// let config = NoisyConfig::new(0.01, 7)?;
/// let pool = ThreadPool::serial();
///
/// let cold = monte_carlo_sharded_cached(&pool, &tree, &config, 10_000, 11, 512, Some(&cache))?;
/// let warm = monte_carlo_sharded_cached(&pool, &tree, &config, 10_000, 11, 512, Some(&cache))?;
/// let uncached = monte_carlo_sharded(&pool, &tree, &config, 10_000, 11, 512)?;
/// assert_eq!(cold, warm);
/// assert_eq!(cold, uncached);
/// assert!(cache.stats().hits > 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
pub fn monte_carlo_sharded_cached(
    pool: &ThreadPool,
    netlist: &Netlist,
    config: &NoisyConfig,
    patterns: usize,
    pattern_seed: u64,
    chunk: usize,
    cache: Option<&ShardCache>,
) -> Result<NoisyOutcome, SimError> {
    monte_carlo_sharded_cached_programs(
        pool,
        netlist,
        config,
        patterns,
        pattern_seed,
        chunk,
        cache,
        None,
    )
}

/// [`monte_carlo_sharded_cached`] with compiled [`SimProgram`]s served
/// from / written to `programs` — the entry point for long-lived
/// services that execute many experiments over the same netlists and
/// want warm requests to skip compilation entirely.
///
/// The evaluation backend is resolved per call from the
/// `NANOBOUND_ENGINE` environment variable ([`EngineKind::from_env`]):
/// the compiled engine by default, the interpreted oracle under
/// `NANOBOUND_ENGINE=interp`. Both produce **bit-identical** outcomes —
/// patterns replay the frozen `PatternSet::random` stream and fault
/// masks are pure functions of `(shard seed, gate, word)` under the v2
/// counter stream, identical regardless of engine, batching or
/// evaluation order — so cache entries, golden CSVs and `--jobs`
/// invariance hold across backends.
///
/// # Errors
///
/// Same as [`monte_carlo_sharded_cached`], plus a configuration error
/// for an unrecognized `NANOBOUND_ENGINE` value.
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_sharded_cached_programs(
    pool: &ThreadPool,
    netlist: &Netlist,
    config: &NoisyConfig,
    patterns: usize,
    pattern_seed: u64,
    chunk: usize,
    cache: Option<&ShardCache>,
    programs: Option<&ProgramCache>,
) -> Result<NoisyOutcome, SimError> {
    // This is the single sharding pipeline: the uncached
    // [`monte_carlo_sharded`] delegates here with `cache: None`, so the
    // shard math, seed derivation and merge can never diverge between
    // the two entry points. The plan validates `patterns`/`chunk` and
    // owns the shard arithmetic shared with the cluster paths.
    let plan = ShardPlan::new(patterns, chunk)?;
    let engine = EngineKind::from_env()?;
    let fingerprint =
        cache.map(|_| monte_carlo_fingerprint(netlist, config, patterns, pattern_seed, chunk));
    // Pin the experiment for the duration of the run: a concurrent GC
    // sweep must not delete shards between this point and the merge.
    let _in_flight = match (cache, &fingerprint) {
        (Some(cache), Some(fingerprint)) => Some(cache.pin(*fingerprint)),
        _ => None,
    };
    let shards = plan.shard_count();

    // Validates a cached tally before merging: guard against entries
    // that verified and decoded but describe a different experiment
    // (only reachable via a fingerprint collision) — mismatches
    // recompute. The same predicate admits remote cluster results.
    let load_shard = |i: usize, len: usize| -> Option<NoisyTally> {
        let (cache, fingerprint) = (cache?, fingerprint.as_ref()?);
        let tally = cache.load_value::<NoisyTally>(fingerprint, i as u64)?;
        tally_admissible(netlist, &tally, len).then_some(tally)
    };

    if engine == EngineKind::Interp {
        let tallies: Vec<Result<NoisyTally, SimError>> = pool.map_indexed(shards, |i| {
            let len = plan.shard_patterns(i);
            if let Some(tally) = load_shard(i, len) {
                return Ok(tally);
            }
            let shard_config = NoisyConfig::new(config.epsilon, shard_seed(config.seed, i as u64))?;
            let tally = monte_carlo_tally(
                netlist,
                &shard_config,
                len,
                shard_seed(pattern_seed, i as u64),
            )?;
            if let (Some(cache), Some(fingerprint)) = (cache, &fingerprint) {
                cache.store_value(fingerprint, i as u64, &tally);
            }
            Ok(tally)
        });
        let mut merged: Option<NoisyTally> = None;
        for tally in tallies {
            let tally = tally?;
            match &mut merged {
                None => merged = Some(tally),
                Some(total) => total.merge(&tally),
            }
        }
        return Ok(merged
            .expect("patterns >= 2 yields at least one shard")
            .outcome());
    }

    // Compiled engine: one program per call (or shared through the
    // program cache), one scratch + running tally per worker. Shards
    // are executed [`SimProgram::preferred_batch`] at a time through
    // one tape pass (`SimProgram::run_tally_batch`) — legal because
    // the v2 fault stream derives each shard's masks as pure
    // functions of its own seed, so batching changes wall-clock,
    // never counts. Cache hits
    // within a group merge as-is; misses simulate batched and, with a
    // cache present, are stored individually so every shard stays a
    // relocatable unit. Integer tallies merge associatively and
    // commutatively, so the scheduling-dependent split between group
    // tallies and worker accumulators cannot change the merged counts.
    let program: Arc<SimProgram> = match programs {
        Some(cache) => cache.get_or_compile(netlist),
        None => Arc::new(SimProgram::compile(netlist)),
    };
    let batch = program.preferred_batch(chunk);
    let groups = shards.div_ceil(batch);
    let (group_tallies, workers) = pool.map_indexed_init(
        groups,
        || BatchWorker {
            scratch: program.scratch(),
            acc: program.empty_tally(),
            specs: Vec::with_capacity(batch),
            miss_idx: Vec::with_capacity(batch),
            fresh: Vec::with_capacity(batch),
        },
        |w, g| -> Result<Option<NoisyTally>, SimError> {
            let first = g * batch;
            let last = (first + batch).min(shards);
            w.specs.clear();
            w.miss_idx.clear();
            let mut group: Option<NoisyTally> = None;
            for i in first..last {
                let len = plan.shard_patterns(i);
                if let Some(tally) = load_shard(i, len) {
                    match &mut group {
                        None => group = Some(tally),
                        Some(total) => total.merge(&tally),
                    }
                } else {
                    w.miss_idx.push(i);
                    w.specs.push(ShardSpec {
                        fault_seed: shard_seed(config.seed, i as u64),
                        pattern_seed: shard_seed(pattern_seed, i as u64),
                        patterns: len,
                    });
                }
            }
            if !w.specs.is_empty() {
                w.fresh.clear();
                w.fresh.resize(w.specs.len(), program.empty_tally());
                program.run_tally_batch(&mut w.scratch, config.epsilon, &w.specs, &mut w.fresh)?;
                if let (Some(cache), Some(fingerprint)) = (cache, &fingerprint) {
                    for (&i, tally) in w.miss_idx.iter().zip(&w.fresh) {
                        cache.store_value(fingerprint, i as u64, tally);
                        match &mut group {
                            None => group = Some(tally.clone()),
                            Some(total) => total.merge(tally),
                        }
                    }
                } else {
                    for tally in &w.fresh {
                        w.acc.merge(tally);
                    }
                }
            }
            Ok(group)
        },
    );
    let mut merged = program.empty_tally();
    for tally in group_tallies {
        if let Some(tally) = tally? {
            merged.merge(&tally);
        }
    }
    for w in workers {
        merged.merge(&w.acc);
    }
    Ok(merged.outcome())
}

/// Per-worker state of the batched compiled pipeline.
struct BatchWorker {
    scratch: SimScratch,
    /// Running tally of cache-less groups (kept out of the per-group
    /// results so the no-cache hot path allocates nothing per group).
    acc: NoisyTally,
    /// Current group's miss specs, reused across groups.
    specs: Vec<ShardSpec>,
    /// Shard indices of `specs`, for cache storage.
    miss_idx: Vec<usize>,
    /// Freshly simulated tallies of the current group.
    fresh: Vec<NoisyTally>,
}

/// [`grid_map`](crate::grid_map) with per-cell results served from /
/// written to `cache` under `fingerprint`.
///
/// Cells are keyed by grid index, so `fingerprint` must capture the
/// grid itself and every parameter of `f` — use
/// [`nanobound_cache::FingerprintBuilder::push_f64s`] for the grid and push each
/// constant explicitly. Encoded cells round-trip bit-exactly, so the
/// result is identical to the uncached sweep for every hit/miss mix.
pub fn grid_map_cached<X, T, F>(
    pool: &ThreadPool,
    xs: &[X],
    fingerprint: &Fingerprint,
    cache: Option<&ShardCache>,
    f: F,
) -> Vec<T>
where
    X: Sync,
    T: CacheCodec + Send,
    F: Fn(&X) -> T + Sync,
{
    let _in_flight = cache.map(|cache| cache.pin(*fingerprint));
    pool.map_indexed(xs.len(), |i| {
        let Some(cache) = cache else { return f(&xs[i]) };
        if let Some(value) = cache.load_value::<T>(fingerprint, i as u64) {
            return value;
        }
        let value = f(&xs[i]);
        cache.store_value(fingerprint, i as u64, &value);
        value
    })
}

/// [`try_grid_map`](crate::try_grid_map) with per-cell caching: only
/// successful cells are cached; errors always recompute and keep the
/// lowest-indexed-error contract.
///
/// # Errors
///
/// Returns the error produced at the first (by index) failing grid
/// point, exactly like the uncached variant.
pub fn try_grid_map_cached<X, T, E, F>(
    pool: &ThreadPool,
    xs: &[X],
    fingerprint: &Fingerprint,
    cache: Option<&ShardCache>,
    f: F,
) -> Result<Vec<T>, E>
where
    X: Sync,
    T: CacheCodec + Send,
    E: Send,
    F: Fn(&X) -> Result<T, E> + Sync,
{
    let _in_flight = cache.map(|cache| cache.pin(*fingerprint));
    pool.map_indexed(xs.len(), |i| {
        let Some(cache) = cache else { return f(&xs[i]) };
        if let Some(value) = cache.load_value::<T>(fingerprint, i as u64) {
            return Ok(value);
        }
        let value = f(&xs[i])?;
        cache.store_value(fingerprint, i as u64, &value);
        Ok(value)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::monte_carlo_sharded;
    use nanobound_cache::FingerprintBuilder;
    use nanobound_logic::{GateKind, Netlist as Nl};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nanobound_runner_cached_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn xor_pair() -> Nl {
        let mut nl = Nl::new("xp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[a, g1]).unwrap();
        nl.add_output("y1", g1).unwrap();
        nl.add_output("y2", g2).unwrap();
        nl
    }

    #[test]
    fn none_cache_matches_uncached_exactly() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let plain = monte_carlo_sharded(&pool, &nl, &cfg, 10_000, 19, 512).unwrap();
        let cached = monte_carlo_sharded_cached(&pool, &nl, &cfg, 10_000, 19, 512, None).unwrap();
        assert_eq!(plain, cached);
    }

    #[test]
    fn warm_cache_is_bit_identical_across_jobs() {
        let dir = scratch("warm");
        let cache = ShardCache::open(&dir).unwrap();
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let reference =
            monte_carlo_sharded(&ThreadPool::serial(), &nl, &cfg, 10_000, 19, 512).unwrap();
        let cold = monte_carlo_sharded_cached(
            &ThreadPool::new(4).unwrap(),
            &nl,
            &cfg,
            10_000,
            19,
            512,
            Some(&cache),
        )
        .unwrap();
        assert_eq!(cold, reference);
        let cold_stats = cache.stats();
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses, 20); // ceil(10000/512)
        for jobs in [1, 3, 8] {
            let warm = monte_carlo_sharded_cached(
                &ThreadPool::new(jobs).unwrap(),
                &nl,
                &cfg,
                10_000,
                19,
                512,
                Some(&cache),
            )
            .unwrap();
            assert_eq!(warm, reference, "jobs={jobs}");
        }
        assert_eq!(cache.stats().hits, 60);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compiled_pipeline_matches_interpreted_chunk_merge() {
        // The default (compiled) pipeline against a hand-rolled merge of
        // interpreted chunk tallies: bit-identical, for several worker
        // counts (per-worker accumulators must not change the sums).
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.07, 5).unwrap();
        let (patterns, chunk) = (5_000usize, 512usize);
        let mut merged: Option<NoisyTally> = None;
        for i in 0..patterns.div_ceil(chunk) {
            let len = chunk.min(patterns - i * chunk);
            let shard_config = NoisyConfig::new(0.07, shard_seed(5, i as u64)).unwrap();
            let tally =
                monte_carlo_tally(&nl, &shard_config, len, shard_seed(9, i as u64)).unwrap();
            match &mut merged {
                None => merged = Some(tally),
                Some(total) => total.merge(&tally),
            }
        }
        let expected = merged.unwrap().outcome();
        for jobs in [1, 3, 8] {
            let pool = ThreadPool::new(jobs).unwrap();
            let out = monte_carlo_sharded(&pool, &nl, &cfg, patterns, 9, chunk).unwrap();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn shared_program_cache_compiles_once_and_changes_nothing() {
        let nl = xor_pair();
        let cfg = NoisyConfig::new(0.05, 17).unwrap();
        let pool = ThreadPool::serial();
        let plain = monte_carlo_sharded(&pool, &nl, &cfg, 10_000, 19, 512).unwrap();
        let programs = ProgramCache::new();
        for _ in 0..3 {
            let out = monte_carlo_sharded_cached_programs(
                &pool,
                &nl,
                &cfg,
                10_000,
                19,
                512,
                None,
                Some(&programs),
            )
            .unwrap();
            assert_eq!(out, plain);
        }
        assert_eq!(programs.len(), 1, "one structure, one compilation");
    }

    #[test]
    fn distinct_parameters_use_distinct_entries() {
        let nl = xor_pair();
        let base = monte_carlo_fingerprint(&nl, &NoisyConfig::new(0.05, 1).unwrap(), 1000, 2, 64);
        let other_eps =
            monte_carlo_fingerprint(&nl, &NoisyConfig::new(0.06, 1).unwrap(), 1000, 2, 64);
        let other_seed =
            monte_carlo_fingerprint(&nl, &NoisyConfig::new(0.05, 9).unwrap(), 1000, 2, 64);
        let other_chunk =
            monte_carlo_fingerprint(&nl, &NoisyConfig::new(0.05, 1).unwrap(), 1000, 2, 128);
        let mut all = vec![base, other_eps, other_seed, other_chunk];
        all.dedup();
        assert_eq!(all.len(), 4, "fingerprints collided: {all:?}");
    }

    #[test]
    fn structurally_different_netlists_have_different_fingerprints() {
        let a = xor_pair();
        let mut b = xor_pair();
        let extra = b.add_gate(GateKind::Not, &[b.inputs()[0]]).unwrap();
        b.add_output("y3", extra).unwrap();
        let cfg = NoisyConfig::new(0.1, 1).unwrap();
        assert_ne!(
            monte_carlo_fingerprint(&a, &cfg, 100, 1, 64),
            monte_carlo_fingerprint(&b, &cfg, 100, 1, 64)
        );
    }

    #[test]
    fn names_do_not_change_the_fingerprint() {
        let mut a = Nl::new("one");
        let x = a.add_input("x");
        let g = a.add_gate(GateKind::Not, &[x]).unwrap();
        a.add_output("y", g).unwrap();
        let mut b = Nl::new("two");
        let x = b.add_input("renamed");
        let g = b.add_gate(GateKind::Not, &[x]).unwrap();
        b.add_output("other", g).unwrap();
        let fp = |nl: &Nl| {
            let mut builder = FingerprintBuilder::new("t");
            netlist_fingerprint(&mut builder, nl);
            builder.finish()
        };
        assert_eq!(fp(&a), fp(&b));
    }

    #[test]
    fn cached_grid_map_roundtrips_and_matches_serial() {
        let dir = scratch("grid");
        let cache = ShardCache::open(&dir).unwrap();
        let fp = FingerprintBuilder::new("grid-test").finish();
        let xs: Vec<f64> = (0..57).map(|i| f64::from(i) * 0.25).collect();
        let f = |x: &f64| vec![x.sin(), x.cos()];
        let serial: Vec<Vec<f64>> = xs.iter().map(f).collect();
        let pool = ThreadPool::new(4).unwrap();
        let cold = grid_map_cached(&pool, &xs, &fp, Some(&cache), f);
        assert_eq!(cold, serial);
        let warm = grid_map_cached(&pool, &xs, &fp, Some(&cache), |_| -> Vec<f64> {
            panic!("warm run must not recompute any cell")
        });
        assert_eq!(warm, serial);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn try_grid_map_cached_keeps_the_error_contract_and_skips_caching_errors() {
        let dir = scratch("try_grid");
        let cache = ShardCache::open(&dir).unwrap();
        let fp = FingerprintBuilder::new("try-grid-test").finish();
        let xs: Vec<u64> = (0..32).collect();
        let pool = ThreadPool::new(4).unwrap();
        let out: Result<Vec<u64>, u64> = try_grid_map_cached(&pool, &xs, &fp, Some(&cache), |&x| {
            if x % 10 == 3 {
                Err(x)
            } else {
                Ok(x * 2)
            }
        });
        assert_eq!(out.unwrap_err(), 3);
        // Successes were cached; failures were not, and still fail warm.
        let out2: Result<Vec<u64>, u64> =
            try_grid_map_cached(&pool, &xs, &fp, Some(&cache), |&x| {
                assert_eq!(x % 10, 3, "cached cell {x} recomputed");
                Err(x)
            });
        assert_eq!(out2.unwrap_err(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
