//! Deterministic parallel execution for the `nanobound` workspace.
//!
//! Every experiment in the paper — the noisy Monte-Carlo validation and
//! the ε/δ/k sweep families behind Figures 2–8 — is embarrassingly
//! parallel. This crate is the substrate that exploits that without
//! giving up reproducibility:
//!
//! - [`ThreadPool`] — a std-only work-stealing executor over
//!   index-addressed task sets ([`ThreadPool::map_indexed`]);
//! - [`shard_seed`] — frozen per-shard RNG seed derivation, so a
//!   shard's random stream is a function of (master seed, shard index)
//!   and never of the worker that ran it;
//! - [`monte_carlo_sharded`] — chunked trial batching for
//!   `nanobound_sim`'s noisy Monte-Carlo, merging integer
//!   [`nanobound_sim::NoisyTally`] counts in chunk order;
//! - [`grid_map`] / [`try_grid_map`] — parallel sweep evaluation that
//!   shards grid points across workers and returns them in grid order;
//! - cached variants ([`monte_carlo_sharded_cached`], [`grid_map_cached`],
//!   [`try_grid_map_cached`]) — the same computations backed by
//!   `nanobound-cache`'s content-addressed shard store, keyed by a
//!   [`monte_carlo_fingerprint`]-style experiment identity so a warm
//!   cache run stays byte-identical to a cold one;
//! - [`ShardPlan`] / [`monte_carlo_shard_tallies`] — the relocatable
//!   shard abstraction behind `nanobound cluster`: any contiguous
//!   [`ShardRange`] of an experiment can be computed by any process and
//!   merged in any order without changing a bit of the outcome.
//!
//! **The determinism contract.** For every entry point in this crate,
//! the output is a pure function of the arguments: running with
//! `--jobs 1` and `--jobs N` produces byte-identical results. The
//! property-test suite (`tests/properties.rs`) pins this for thread
//! counts 1/2/4/8 and arbitrary chunk sizes; the workspace's golden
//! figure CSVs pin it end to end.
//!
//! # Examples
//!
//! ```
//! use nanobound_runner::{grid_map, ThreadPool};
//!
//! let pool = ThreadPool::auto();
//! let xs = nanobound_core::sweep::linspace(0.0, 0.5, 101);
//! let ys = grid_map(&pool, &xs, |&eps| 2.0 * eps * (1.0 - eps));
//! assert_eq!(ys.len(), 101);
//! // Identical to the serial sweep, element for element:
//! assert_eq!(ys, nanobound_core::sweep::grid_map(&xs, |&eps| 2.0 * eps * (1.0 - eps)));
//! ```

#![forbid(unsafe_code)]
mod cached;
mod error;
mod grid;
mod montecarlo;
mod pool;
mod seed;
mod shards;

pub use cached::{
    cone_fingerprints, experiment_builder, grid_map_cached, monte_carlo_fingerprint,
    monte_carlo_sharded_cached, monte_carlo_sharded_cached_programs, netlist_fingerprint,
    try_grid_map_cached,
};
pub use error::RunnerError;
pub use grid::{grid_map, try_grid_map};
pub use montecarlo::{monte_carlo_sharded, DEFAULT_CHUNK};
pub use pool::{Dispatcher, ThreadPool, MAX_JOBS};
pub use seed::shard_seed;
pub use shards::{monte_carlo_shard_tallies, tally_admissible, ShardPlan, ShardRange};
