//! Gate-level netlist infrastructure for noisy-circuit analysis.
//!
//! This crate provides the structural substrate used throughout the
//! `nanobound` workspace, a reproduction of *Marculescu, "Energy Bounds for
//! Fault-Tolerant Nanoscale Designs", DATE 2005*:
//!
//! - [`GateKind`] — the gate library (constants, buffers, inverters, and
//!   variable-fanin AND/NAND/OR/NOR/XOR/XNOR plus 3-input majority);
//! - [`Netlist`] — a combinational netlist stored as a DAG whose nodes are
//!   kept in topological order *by construction*;
//! - [`stats::CircuitStats`] — the aggregate parameters consumed by the
//!   paper's bounds (size, depth, fanin distribution);
//! - [`transform`] — synthesis-lite passes: constant folding, buffer and
//!   double-inverter collapsing, structural hashing, dead-gate sweeping and
//!   balanced decomposition to a maximum fanin `k` (the stand-in for the
//!   paper's SIS + fanin-3 library mapping flow).
//!
//! # Examples
//!
//! Build a 1-bit full adder and evaluate it:
//!
//! ```
//! use nanobound_logic::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), nanobound_logic::LogicError> {
//! let mut nl = Netlist::new("full_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let cin = nl.add_input("cin");
//! let sum = nl.add_gate(GateKind::Xor, &[a, b, cin])?;
//! let ab = nl.add_gate(GateKind::And, &[a, b])?;
//! let ac = nl.add_gate(GateKind::And, &[a, cin])?;
//! let bc = nl.add_gate(GateKind::And, &[b, cin])?;
//! let cout = nl.add_gate(GateKind::Or, &[ab, ac, bc])?;
//! nl.add_output("sum", sum)?;
//! nl.add_output("cout", cout)?;
//!
//! assert_eq!(nl.evaluate(&[true, true, false])?, vec![false, true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cone;
pub mod error;
pub mod gate;
pub mod netlist;
pub mod stats;
pub mod topo;
pub mod transform;

pub use cone::{cone_hash, cone_support, extract_cone, output_cone_hashes, ConeHash};
pub use error::LogicError;
pub use gate::GateKind;
pub use netlist::{Netlist, Node, NodeId};
pub use stats::CircuitStats;
