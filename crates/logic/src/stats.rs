//! Aggregate circuit statistics consumed by the energy/size/depth bounds.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::netlist::Netlist;
use crate::topo;

/// Aggregate structural parameters of a netlist.
///
/// These are exactly the circuit-specific quantities the paper's bounds
/// consume: size `S0` ([`CircuitStats::num_gates`]), depth `d0`, the fanin
/// statistics `k`, and the interface width `n`/`m`. Switching activity and
/// sensitivity are *behavioural* and live in `nanobound-sim`.
///
/// # Examples
///
/// ```
/// use nanobound_logic::{CircuitStats, GateKind, Netlist};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::Nand, &[a, b])?;
/// nl.add_output("y", g)?;
/// let stats = CircuitStats::of(&nl);
/// assert_eq!(stats.num_gates, 1);
/// assert_eq!(stats.max_fanin, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Design name copied from the netlist.
    pub name: String,
    /// Number of primary inputs (`n` in the paper).
    pub num_inputs: usize,
    /// Number of primary outputs (`m` in the paper).
    pub num_outputs: usize,
    /// Number of logic gates, excluding buffers and constants (`S0`).
    pub num_gates: usize,
    /// Number of buffer nodes (not counted in `num_gates`).
    pub num_buffers: usize,
    /// Number of constant nodes.
    pub num_constants: usize,
    /// Logic depth in gate levels (`d0`).
    pub depth: u32,
    /// Largest gate fanin (`k` when the netlist is mapped to a fanin-k
    /// library).
    pub max_fanin: usize,
    /// Mean gate fanin over logic gates.
    pub avg_fanin: f64,
    /// Histogram: fanin size → number of logic gates with that fanin.
    pub fanin_histogram: BTreeMap<usize, usize>,
}

impl CircuitStats {
    /// Computes the statistics of a netlist.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let mut num_gates = 0usize;
        let mut num_buffers = 0usize;
        let mut num_constants = 0usize;
        let mut fanin_sum = 0usize;
        let mut max_fanin = 0usize;
        let mut fanin_histogram = BTreeMap::new();
        for node in netlist.nodes() {
            match node.kind() {
                None => {}
                Some(GateKind::Buf) => num_buffers += 1,
                Some(GateKind::Const0 | GateKind::Const1) => num_constants += 1,
                Some(_) => {
                    num_gates += 1;
                    let f = node.fanins().len();
                    fanin_sum += f;
                    max_fanin = max_fanin.max(f);
                    *fanin_histogram.entry(f).or_insert(0) += 1;
                }
            }
        }
        let avg_fanin = if num_gates == 0 {
            0.0
        } else {
            fanin_sum as f64 / num_gates as f64
        };
        CircuitStats {
            name: netlist.name().to_owned(),
            num_inputs: netlist.input_count(),
            num_outputs: netlist.output_count(),
            num_gates,
            num_buffers,
            num_constants,
            depth: topo::depth(netlist),
            max_fanin,
            avg_fanin,
            fanin_histogram,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} m={} S0={} depth={} max_fanin={} avg_fanin={:.2}",
            self.name,
            self.num_inputs,
            self.num_outputs,
            self.num_gates,
            self.depth,
            self.max_fanin,
            self.avg_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    #[test]
    fn stats_of_small_circuit() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::And, &[a, b, c]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let buf = nl.add_gate(GateKind::Buf, &[g2]).unwrap();
        nl.add_output("y", buf).unwrap();
        let st = CircuitStats::of(&nl);
        assert_eq!(st.num_inputs, 3);
        assert_eq!(st.num_outputs, 1);
        assert_eq!(st.num_gates, 2);
        assert_eq!(st.num_buffers, 1);
        assert_eq!(st.depth, 2);
        assert_eq!(st.max_fanin, 3);
        assert!((st.avg_fanin - 2.0).abs() < 1e-12);
        assert_eq!(st.fanin_histogram.get(&3), Some(&1));
        assert_eq!(st.fanin_histogram.get(&1), Some(&1));
    }

    #[test]
    fn empty_circuit_stats() {
        let nl = Netlist::new("empty");
        let st = CircuitStats::of(&nl);
        assert_eq!(st.num_gates, 0);
        assert_eq!(st.avg_fanin, 0.0);
        assert_eq!(st.depth, 0);
        assert!(st.fanin_histogram.is_empty());
    }

    #[test]
    fn display_contains_key_fields() {
        let mut nl = Netlist::new("disp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        nl.add_output("y", g).unwrap();
        let s = CircuitStats::of(&nl).to_string();
        assert!(s.contains("disp"));
        assert!(s.contains("S0=1"));
    }
}
