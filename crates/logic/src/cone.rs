//! Cone-level structural identity: canonical fanin-cone serialization,
//! a frozen 128-bit cone hash, and order-preserving cone extraction.
//!
//! The paper's bounds compose over fanin cones — energy and reliability
//! are per-gate/per-cone quantities — so the cone is also the natural
//! unit of *reuse*: two requests whose outputs have structurally equal
//! cones can share one compiled tape and one measured profile. This
//! module supplies the identity that makes such sharing sound:
//!
//! - [`cone_events`] — the canonical serialization of one node's fanin
//!   cone as a rooted, ordered DAG: a pre-order DFS that assigns
//!   canonical numbers at first visit and emits explicit
//!   back-references on re-convergence. Two cones produce the same
//!   event stream **iff** they are isomorphic as rooted ordered DAGs.
//!   (A bottom-up Merkle hash would collapse `And(a, b)` with
//!   `And(a, a)`; the back-references keep input sharing visible.)
//! - [`cone_hash`] / [`ConeHash`] — a 128-bit fold of that stream.
//!   **Frozen**: the event encoding and the mixer are pinned by
//!   reference-value tests below (like `shard_seed` and the fault
//!   stream), because persistent caches and cross-run sharing key on
//!   these values.
//! - [`cone_support`] — the transitive fanin closure of a set of
//!   roots, in ascending id order.
//! - [`extract_cone`] — the sub-netlist spanned by a subset of
//!   outputs, **preserving the relative node order** of the parent.
//!   Order preservation is what makes a tape sliced from the parent's
//!   compiled program bit-identical to compiling the extraction: op
//!   order, slot assignment and fault-mask op indices all replay.
//!
//! Names never enter any of this — cone identity is gate ops plus
//! topology, nothing else.

use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};

/// A frozen 128-bit structural hash of one fanin cone.
///
/// Equal hashes identify cones that are isomorphic as rooted ordered
/// DAGs (up to the negligible collision probability of a 128-bit
/// hash); the serialization it folds is [`cone_events`]. Values are
/// pinned by reference tests — changing them invalidates every
/// cone-keyed cache, so don't.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConeHash {
    hi: u64,
    lo: u64,
}

impl ConeHash {
    /// The hash as a 32-digit lowercase hex string.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Display for ConeHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Event tag: first visit of a primary input.
const EVENT_INPUT: u64 = 0;
/// Event tag: first visit of a gate (kind ordinal and arity packed in).
const EVENT_GATE: u64 = 1;
/// Event tag: back-reference to an already-visited node.
const EVENT_REF: u64 = 2;

/// Initial state of the `hi` lane (the SplitMix64 increment).
const SEED_HI: u64 = 0x9E37_79B9_7F4A_7C15;
/// Initial state of the `lo` lane.
const SEED_LO: u64 = 0xC2B2_AE3D_27D4_EB4F;
/// Lane-decorrelation multiplier applied to the `lo` lane's absorption.
const LANE_MUL: u64 = 0xA24B_AED4_963E_E407;

/// The SplitMix64 finalizer — the same mixer family as the frozen v2
/// fault stream, reimplemented here because `nanobound-logic` sits
/// below the cache and sim crates in the dependency order.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Incremental two-lane fold over the event stream.
struct ConeHasher {
    hi: u64,
    lo: u64,
    events: u64,
}

impl ConeHasher {
    fn new() -> Self {
        ConeHasher {
            hi: SEED_HI,
            lo: SEED_LO,
            events: 0,
        }
    }

    fn absorb(&mut self, word: u64) {
        self.hi = mix(self.hi ^ word);
        self.lo = mix(self.lo ^ word.wrapping_mul(LANE_MUL)).wrapping_add(self.hi);
        self.events += 1;
    }

    fn finish(self) -> ConeHash {
        ConeHash {
            hi: mix(self.hi ^ self.events),
            lo: mix(self.lo ^ self.events.rotate_left(32)),
        }
    }
}

/// The canonical-numbering DFS over one cone, parameterized over what
/// to do with each emitted event word.
fn walk_cone(netlist: &Netlist, root: NodeId, mut emit: impl FnMut(u64)) {
    let first_visit = |node: &Node| -> u64 {
        match node {
            Node::Input { .. } => EVENT_INPUT,
            Node::Gate { kind, fanins } => {
                let ordinal = GateKind::ALL
                    .iter()
                    .position(|k| k == kind)
                    .expect("every kind appears in GateKind::ALL")
                    as u64;
                EVENT_GATE | (ordinal << 3) | ((fanins.len() as u64) << 8)
            }
        }
    };
    // Canonical number of each visited node; u32::MAX = not yet seen.
    let mut canon = vec![u32::MAX; netlist.node_count()];
    let mut next: u32 = 0;
    canon[root.index()] = next;
    next += 1;
    emit(first_visit(netlist.node(root)));
    // (node, index of the next fanin to descend into)
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some((id, i)) = stack.last_mut() {
        let fanins = netlist.node(*id).fanins();
        if *i == fanins.len() {
            stack.pop();
            continue;
        }
        let f = fanins[*i];
        *i += 1;
        let seen = canon[f.index()];
        if seen != u32::MAX {
            emit(EVENT_REF | (u64::from(seen) << 3));
        } else {
            canon[f.index()] = next;
            next += 1;
            emit(first_visit(netlist.node(f)));
            stack.push((f, 0));
        }
    }
}

/// The canonical serialization of `root`'s fanin cone.
///
/// A pre-order DFS from `root`, descending into fanins in declared
/// order: the first visit of a node emits its label (input, or gate
/// kind ordinal + arity) and assigns it the next canonical number; a
/// re-encountered node emits a back-reference to that number. The
/// stream reconstructs the rooted ordered DAG uniquely, so **two cones
/// yield equal streams iff they are isomorphic** — node ids, node
/// positions and names all cancel out, while input sharing does not.
///
/// Exposed chiefly as the oracle for hash-equality properties; use
/// [`cone_hash`] for keys.
#[must_use]
pub fn cone_events(netlist: &Netlist, root: NodeId) -> Vec<u64> {
    let mut events = Vec::new();
    walk_cone(netlist, root, |w| events.push(w));
    events
}

/// The frozen 128-bit hash of `root`'s fanin cone — a two-lane
/// SplitMix64-style fold over [`cone_events`], streamed without
/// materializing the event list.
#[must_use]
pub fn cone_hash(netlist: &Netlist, root: NodeId) -> ConeHash {
    let mut hasher = ConeHasher::new();
    walk_cone(netlist, root, |w| hasher.absorb(w));
    hasher.finish()
}

/// The cone hash of every primary output's driver, in declaration
/// order — the cone layer of the workspace's layered fingerprints.
#[must_use]
pub fn output_cone_hashes(netlist: &Netlist) -> Vec<ConeHash> {
    netlist
        .outputs()
        .iter()
        .map(|o| cone_hash(netlist, o.driver))
        .collect()
}

/// The transitive fanin closure of `roots`, in ascending id order.
///
/// Ascending id order is the parent's topological order restricted to
/// the cone — exactly the order [`extract_cone`] preserves.
#[must_use]
pub fn cone_support(netlist: &Netlist, roots: &[NodeId]) -> Vec<NodeId> {
    let mut marked = vec![false; netlist.node_count()];
    let mut work: Vec<NodeId> = Vec::new();
    for &root in roots {
        if !marked[root.index()] {
            marked[root.index()] = true;
            work.push(root);
        }
    }
    while let Some(id) = work.pop() {
        for &f in netlist.node(id).fanins() {
            if !marked[f.index()] {
                marked[f.index()] = true;
                work.push(f);
            }
        }
    }
    marked
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// Extracts the sub-netlist spanned by the outputs at `output_indices`
/// (in the given order), preserving the parent's relative node order.
///
/// The extraction keeps exactly [`cone_support`] of the selected
/// drivers — inputs outside the cone are dropped — and re-emits the
/// kept nodes through the ordinary builders in ascending parent-id
/// order. Signal names carry over unchanged (they never affect
/// structural identity). Returns the child netlist plus the kept
/// parent ids, index-aligned with the child's nodes.
///
/// Because relative order is preserved, compiling the child replays the
/// parent compilation restricted to the kept nodes: same op order, same
/// slot-allocation sequence, same per-op fault-mask ordinals. That is
/// the soundness theorem behind tape slicing in `nanobound-sim`.
///
/// # Panics
///
/// Panics if any output index is out of bounds — callers hold the
/// netlist and its output count.
#[must_use]
pub fn extract_cone(netlist: &Netlist, output_indices: &[usize]) -> (Netlist, Vec<NodeId>) {
    let roots: Vec<NodeId> = output_indices
        .iter()
        .map(|&i| netlist.outputs()[i].driver)
        .collect();
    let keep = cone_support(netlist, &roots);
    let mut child = Netlist::new(format!("{}::cone", netlist.name()));
    // Parent id -> child id, for fanin remapping.
    let mut map = vec![u32::MAX; netlist.node_count()];
    let mut fanin_buf: Vec<NodeId> = Vec::new();
    for &id in &keep {
        let child_id = match netlist.node(id) {
            Node::Input { name } => child.add_input(name.clone()),
            Node::Gate { kind, fanins } => {
                fanin_buf.clear();
                fanin_buf.extend(
                    fanins
                        .iter()
                        .map(|f| NodeId::from_index(map[f.index()] as usize)),
                );
                child
                    .add_gate(*kind, &fanin_buf)
                    .expect("cone extraction preserves arity and fanin order")
            }
        };
        map[id.index()] = child_id.index() as u32;
    }
    for &i in output_indices {
        let out = &netlist.outputs()[i];
        let driver = NodeId::from_index(map[out.driver.index()] as usize);
        // Output names must be unique per netlist; a request slicing the
        // same cone twice under one name is still well-formed because
        // parent output names were unique already.
        child
            .add_output(out.name.clone(), driver)
            .expect("parent output names are unique");
    }
    (child, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Netlist, NodeId) {
        // y = And(Not(a), Xor(Not(a), b)) — re-converges on Not(a).
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let x = nl.add_gate(GateKind::Xor, &[n, b]).unwrap();
        let y = nl.add_gate(GateKind::And, &[n, x]).unwrap();
        nl.add_output("y", y).unwrap();
        (nl, y)
    }

    #[test]
    fn events_distinguish_shared_from_distinct_fanins() {
        // And(a, b) vs And(a, a): a Merkle-style hash would collapse
        // these; the back-reference stream must not.
        let mut ab = Netlist::new("ab");
        let a = ab.add_input("a");
        let b = ab.add_input("b");
        let g = ab.add_gate(GateKind::And, &[a, b]).unwrap();
        let mut aa = Netlist::new("aa");
        let a2 = aa.add_input("a");
        let g2 = aa.add_gate(GateKind::And, &[a2, a2]).unwrap();
        assert_ne!(cone_events(&ab, g), cone_events(&aa, g2));
        assert_ne!(cone_hash(&ab, g), cone_hash(&aa, g2));
    }

    #[test]
    fn hash_ignores_names_and_node_positions() {
        let (nl, y) = diamond();
        // Same structure, different names, extra unrelated nodes
        // interleaved before and between the cone's nodes.
        let mut other = Netlist::new("renamed");
        let junk1 = other.add_input("junk1");
        let p = other.add_input("p");
        let q = other.add_input("q");
        let junk2 = other.add_gate(GateKind::Or, &[junk1, p]).unwrap();
        let n = other.add_gate(GateKind::Not, &[p]).unwrap();
        let x = other.add_gate(GateKind::Xor, &[n, q]).unwrap();
        let _ = other.add_gate(GateKind::Not, &[junk2]).unwrap();
        let y2 = other.add_gate(GateKind::And, &[n, x]).unwrap();
        assert_eq!(cone_events(&nl, y), cone_events(&other, y2));
        assert_eq!(cone_hash(&nl, y), cone_hash(&other, y2));
    }

    #[test]
    fn hash_separates_kinds_arity_and_wiring() {
        let (nl, y) = diamond();
        let base = cone_hash(&nl, y);
        // Different kind at the root.
        let mut k = Netlist::new("k");
        let a = k.add_input("a");
        let b = k.add_input("b");
        let n = k.add_gate(GateKind::Not, &[a]).unwrap();
        let x = k.add_gate(GateKind::Xor, &[n, b]).unwrap();
        let y2 = k.add_gate(GateKind::Or, &[n, x]).unwrap();
        assert_ne!(cone_hash(&k, y2), base);
        // Different wiring: swap the root's operand order.
        let mut w = Netlist::new("w");
        let a = w.add_input("a");
        let b = w.add_input("b");
        let n = w.add_gate(GateKind::Not, &[a]).unwrap();
        let x = w.add_gate(GateKind::Xor, &[n, b]).unwrap();
        let y3 = w.add_gate(GateKind::And, &[x, n]).unwrap();
        assert_ne!(cone_hash(&w, y3), base);
    }

    #[test]
    fn frozen_reference_values() {
        // Pinned like `shard_seed` and the v2 fault stream: these exact
        // values key persistent caches and cross-run tape sharing. If
        // this test fails, the cone hash changed — that invalidates
        // every cone-keyed store and needs the same treatment as a
        // FORMAT_VERSION bump, not a test update.
        let mut single = Netlist::new("one");
        let a = single.add_input("a");
        assert_eq!(
            cone_hash(&single, a).to_hex(),
            "9e0160293a33aaf7a642a5bc54155395"
        );
        let g = single.add_gate(GateKind::Not, &[a]).unwrap();
        assert_eq!(
            cone_hash(&single, g).to_hex(),
            "82df1fe78e63e1f82a6390abf5b5c925"
        );
        let (nl, y) = diamond();
        assert_eq!(
            cone_hash(&nl, y).to_hex(),
            "af1c1b58baa44cd496f823fbc0d4bc3e"
        );
        let mut consts = Netlist::new("c");
        let one = consts.add_const(true);
        let zero = consts.add_const(false);
        let m = consts.add_gate(GateKind::Nand, &[one, zero]).unwrap();
        assert_eq!(
            cone_hash(&consts, m).to_hex(),
            "e11f0834e7ef54e15f900a8ac90f5484"
        );
    }

    #[test]
    fn support_is_the_ascending_closure() {
        let (nl, y) = diamond();
        let all = cone_support(&nl, &[y]);
        assert_eq!(
            all,
            (0..5).map(NodeId::from_index).collect::<Vec<_>>(),
            "the diamond's output cone spans every node"
        );
        // The Not node's cone is just {a, Not}.
        let n = NodeId::from_index(2);
        assert_eq!(cone_support(&nl, &[n]), vec![NodeId::from_index(0), n]);
    }

    #[test]
    fn extract_cone_preserves_order_and_structure() {
        // Parent with two outputs; extracting the first must keep the
        // shared prefix in order and drop the rest.
        let mut nl = Netlist::new("two");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let z = nl.add_gate(GateKind::And, &[a, x]).unwrap();
        nl.add_output("y", x).unwrap();
        nl.add_output("z", z).unwrap();
        let (child, keep) = extract_cone(&nl, &[0]);
        assert_eq!(keep, vec![a, b, x]);
        assert_eq!(child.node_count(), 3);
        assert_eq!(child.output_count(), 1);
        assert_eq!(child.outputs()[0].name, "y");
        child.validate().unwrap();
        // The extracted cone hashes identically to the parent's cone.
        assert_eq!(
            cone_hash(&child, child.outputs()[0].driver),
            cone_hash(&nl, x)
        );
        // Extracting every output in order reproduces the structure.
        let (full, keep_all) = extract_cone(&nl, &[0, 1]);
        assert_eq!(keep_all, vec![a, b, x, z]);
        assert_eq!(full.node_count(), nl.node_count());
        assert_eq!(full.output_count(), 2);
    }

    #[test]
    fn extract_cone_drops_unreached_inputs() {
        let mut nl = Netlist::new("wide");
        let a = nl.add_input("a");
        let _unused = nl.add_input("unused");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.add_output("y", g).unwrap();
        let (child, keep) = extract_cone(&nl, &[0]);
        assert_eq!(child.input_count(), 1);
        assert_eq!(keep, vec![a, g]);
    }
}
