//! Gate kinds and their Boolean semantics.

use std::fmt;
use std::str::FromStr;

use crate::error::LogicError;

/// The kinds of cells available in the generic gate library.
///
/// The library mirrors what the paper's synthesis flow targets: simple
/// variable-fanin standard cells plus a 3-input majority gate (used by the
/// constructive redundancy schemes). Multi-input `Nand`/`Nor`/`Xnor` are the
/// complements of the corresponding `And`/`Or`/`Xor`; in particular a
/// multi-input `Xnor` is the complement of parity, not pairwise equivalence.
///
/// # Examples
///
/// ```
/// use nanobound_logic::GateKind;
///
/// assert!(GateKind::And.eval_bools(&[true, true, true]));
/// assert!(!GateKind::Nand.eval_bools(&[true, true, true]));
/// assert_eq!("NAND".parse::<GateKind>(), Ok(GateKind::Nand));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Constant logic 0 (no fanins).
    Const0,
    /// Constant logic 1 (no fanins).
    Const1,
    /// Buffer: passes its single fanin through unchanged.
    Buf,
    /// Inverter.
    Not,
    /// Conjunction of 2+ fanins.
    And,
    /// Complemented conjunction of 2+ fanins.
    Nand,
    /// Disjunction of 2+ fanins.
    Or,
    /// Complemented disjunction of 2+ fanins.
    Nor,
    /// Parity (odd number of true fanins) of 2+ fanins.
    Xor,
    /// Complemented parity of 2+ fanins.
    Xnor,
    /// Majority of exactly 3 fanins.
    Maj,
}

impl GateKind {
    /// Every gate kind, in declaration order.
    pub const ALL: [GateKind; 11] = [
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Maj,
    ];

    /// Returns `true` if a gate of this kind may have `n` fanins.
    ///
    /// # Examples
    ///
    /// ```
    /// use nanobound_logic::GateKind;
    ///
    /// assert!(GateKind::And.arity_ok(4));
    /// assert!(!GateKind::Maj.arity_ok(2));
    /// assert!(GateKind::Const1.arity_ok(0));
    /// ```
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::Maj => n == 3,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 2,
        }
    }

    /// Validates an arity, returning a [`LogicError::ArityMismatch`] on
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns an error when [`GateKind::arity_ok`] is `false` for `n`.
    pub fn check_arity(self, n: usize) -> Result<(), LogicError> {
        if self.arity_ok(n) {
            Ok(())
        } else {
            Err(LogicError::ArityMismatch { kind: self, got: n })
        }
    }

    /// Returns `true` when fanin order does not matter.
    ///
    /// Every kind in this library is commutative (or has at most one fanin),
    /// which lets structural hashing sort fanin lists.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        true
    }

    /// Returns `true` for the kinds that count as *logic gates* in circuit
    /// statistics (everything except constants and buffers).
    #[must_use]
    pub fn counts_as_gate(self) -> bool {
        !matches!(self, GateKind::Const0 | GateKind::Const1 | GateKind::Buf)
    }

    /// Evaluates the gate bit-parallel over 64 lanes.
    ///
    /// Constants ignore `fanins`; all other kinds fold over it. For the
    /// bit-parallel representation a constant 1 is all-ones.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the fanin count is invalid for the kind.
    /// Callers constructing gates through [`Netlist::add_gate`] never hit
    /// this because arity is validated at insertion.
    ///
    /// [`Netlist::add_gate`]: crate::Netlist::add_gate
    #[must_use]
    pub fn eval_words(self, fanins: &[u64]) -> u64 {
        debug_assert!(self.arity_ok(fanins.len()), "bad arity for {self:?}");
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Nand => !fanins.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Or => fanins.iter().copied().fold(0, |a, b| a | b),
            GateKind::Nor => !fanins.iter().copied().fold(0, |a, b| a | b),
            GateKind::Xor => fanins.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Xnor => !fanins.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Maj => {
                (fanins[0] & fanins[1]) | (fanins[0] & fanins[2]) | (fanins[1] & fanins[2])
            }
        }
    }

    /// Evaluates the gate on plain booleans.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the fanin count is invalid for the kind;
    /// see [`GateKind::eval_words`].
    #[must_use]
    pub fn eval_bools(self, fanins: &[bool]) -> bool {
        let mut words = [0u64; 16];
        let mut buf;
        let slice: &[u64] = if fanins.len() <= 16 {
            for (w, &b) in words.iter_mut().zip(fanins) {
                *w = if b { u64::MAX } else { 0 };
            }
            &words[..fanins.len()]
        } else {
            buf = vec![0u64; fanins.len()];
            for (w, &b) in buf.iter_mut().zip(fanins) {
                *w = if b { u64::MAX } else { 0 };
            }
            &buf
        };
        self.eval_words(slice) & 1 == 1
    }

    /// The canonical upper-case name of the kind, as used by the `.bench`
    /// writer.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Maj => "MAJ",
        }
    }

    /// For a kind with an associative reduction (AND/OR/XOR family), returns
    /// the kind used for the inner levels of a balanced decomposition tree
    /// and whether the final level must complement.
    ///
    /// Returns `None` for kinds that never need decomposition (fixed arity).
    #[must_use]
    pub fn decomposition_core(self) -> Option<(GateKind, bool)> {
        match self {
            GateKind::And => Some((GateKind::And, false)),
            GateKind::Nand => Some((GateKind::And, true)),
            GateKind::Or => Some((GateKind::Or, false)),
            GateKind::Nor => Some((GateKind::Or, true)),
            GateKind::Xor => Some((GateKind::Xor, false)),
            GateKind::Xnor => Some((GateKind::Xor, true)),
            _ => None,
        }
    }

    /// The complemented counterpart of this kind, if one exists in the
    /// library (`And` ↔ `Nand`, `Buf` ↔ `Not`, constants swap, …).
    #[must_use]
    pub fn complement(self) -> Option<GateKind> {
        match self {
            GateKind::And => Some(GateKind::Nand),
            GateKind::Nand => Some(GateKind::And),
            GateKind::Or => Some(GateKind::Nor),
            GateKind::Nor => Some(GateKind::Or),
            GateKind::Xor => Some(GateKind::Xnor),
            GateKind::Xnor => Some(GateKind::Xor),
            GateKind::Buf => Some(GateKind::Not),
            GateKind::Not => Some(GateKind::Buf),
            GateKind::Const0 => Some(GateKind::Const1),
            GateKind::Const1 => Some(GateKind::Const0),
            GateKind::Maj => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown gate-kind name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    /// The text that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.input)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a gate-kind name case-insensitively. `BUFF` is accepted as an
    /// alias for `BUF` (ISCAS `.bench` spelling).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        let kind = match up.as_str() {
            "CONST0" | "GND" | "ZERO" => GateKind::Const0,
            "CONST1" | "VDD" | "ONE" => GateKind::Const1,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "MAJ" => GateKind::Maj,
            _ => {
                return Err(ParseGateKindError {
                    input: s.to_owned(),
                })
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> bool {
        v & 1 == 1
    }

    #[test]
    fn two_input_truth_tables() {
        for a in [false, true] {
            for bb in [false, true] {
                let ins = [a, bb];
                assert_eq!(GateKind::And.eval_bools(&ins), a && bb);
                assert_eq!(GateKind::Nand.eval_bools(&ins), !(a && bb));
                assert_eq!(GateKind::Or.eval_bools(&ins), a || bb);
                assert_eq!(GateKind::Nor.eval_bools(&ins), !(a || bb));
                assert_eq!(GateKind::Xor.eval_bools(&ins), a ^ bb);
                assert_eq!(GateKind::Xnor.eval_bools(&ins), !(a ^ bb));
            }
        }
    }

    #[test]
    fn unary_and_const() {
        assert!(!GateKind::Const0.eval_bools(&[]));
        assert!(GateKind::Const1.eval_bools(&[]));
        assert!(GateKind::Buf.eval_bools(&[true]));
        assert!(!GateKind::Buf.eval_bools(&[false]));
        assert!(!GateKind::Not.eval_bools(&[true]));
        assert!(GateKind::Not.eval_bools(&[false]));
    }

    #[test]
    fn majority_truth_table() {
        for m in 0u8..8 {
            let ins = [m & 1 == 1, m & 2 == 2, m & 4 == 4];
            let expected = ins.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(GateKind::Maj.eval_bools(&ins), expected, "{ins:?}");
        }
    }

    #[test]
    fn multi_input_parity_semantics() {
        // XNOR of 3 inputs is the complement of parity, not pairwise equality.
        assert!(GateKind::Xor.eval_bools(&[true, true, true]));
        assert!(!GateKind::Xnor.eval_bools(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bools(&[true, true, false]));
        assert!(GateKind::Xnor.eval_bools(&[true, true, false]));
    }

    #[test]
    fn eval_words_matches_bools_lanewise() {
        // Lane 0: a=0,b=1; lane 1: a=1,b=1.
        let a = 0b10;
        let bb = 0b11;
        let w = GateKind::And.eval_words(&[a, bb]);
        assert!(!b(w));
        assert!(b(w >> 1));
    }

    #[test]
    fn wide_fanin_eval_bools_takes_heap_path() {
        let ins = vec![true; 20];
        assert!(GateKind::And.eval_bools(&ins));
        let mut ins2 = ins.clone();
        ins2[19] = false;
        assert!(!GateKind::And.eval_bools(&ins2));
        // XOR of 20 ones is even parity -> false.
        assert!(!GateKind::Xor.eval_bools(&ins));
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Const0.arity_ok(0));
        assert!(!GateKind::Const0.arity_ok(1));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Maj.arity_ok(3));
        assert!(!GateKind::Maj.arity_ok(4));
        assert!(GateKind::Xor.arity_ok(2));
        assert!(GateKind::Xor.arity_ok(17));
        assert!(!GateKind::Xor.arity_ok(1));
    }

    #[test]
    fn check_arity_error_payload() {
        let err = GateKind::Maj.check_arity(2).unwrap_err();
        assert_eq!(
            err,
            LogicError::ArityMismatch {
                kind: GateKind::Maj,
                got: 2
            }
        );
    }

    #[test]
    fn parse_roundtrip_all_kinds() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            let lower: GateKind = kind.name().to_ascii_lowercase().parse().unwrap();
            assert_eq!(lower, kind);
        }
    }

    #[test]
    fn parse_aliases_and_errors() {
        assert_eq!("BUFF".parse::<GateKind>(), Ok(GateKind::Buf));
        assert_eq!("inv".parse::<GateKind>(), Ok(GateKind::Not));
        assert_eq!("vdd".parse::<GateKind>(), Ok(GateKind::Const1));
        assert!("FLIPFLOP".parse::<GateKind>().is_err());
        let e = "bogus".parse::<GateKind>().unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn complement_is_involutive() {
        for kind in GateKind::ALL {
            if let Some(c) = kind.complement() {
                assert_eq!(c.complement(), Some(kind));
            }
        }
    }

    #[test]
    fn decomposition_core_only_for_reducible_kinds() {
        assert_eq!(
            GateKind::Nand.decomposition_core(),
            Some((GateKind::And, true))
        );
        assert_eq!(
            GateKind::Xor.decomposition_core(),
            Some((GateKind::Xor, false))
        );
        assert_eq!(GateKind::Maj.decomposition_core(), None);
        assert_eq!(GateKind::Not.decomposition_core(), None);
    }

    #[test]
    fn gate_counting_classification() {
        assert!(GateKind::And.counts_as_gate());
        assert!(GateKind::Not.counts_as_gate());
        assert!(!GateKind::Buf.counts_as_gate());
        assert!(!GateKind::Const0.counts_as_gate());
    }
}
