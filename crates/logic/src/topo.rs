//! Topological analyses: logic levels, depth, fanout, reachability.

use crate::error::LogicError;
use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};

/// Computes a topological order of the nodes, or the witness of a
/// combinational cycle.
///
/// Unlike every other function in this module, this one does **not**
/// assume the id-order invariant: it works on netlists assembled through
/// [`Netlist::from_parts`], where fanins may reference later ids or even
/// form cycles. On success the returned order places every fanin before
/// its gate (for an ordinary netlist this is just `0..n`); on failure the
/// error carries the offending cycle as a node path, e.g.
/// `combinational cycle: n3 -> n5 -> n3`.
///
/// # Errors
///
/// [`LogicError::CombinationalCycle`] with the cycle path in dependency
/// order: each node takes the next as a fanin, and the last takes the
/// first.
pub fn try_topo_order(netlist: &Netlist) -> Result<Vec<NodeId>, LogicError> {
    const WHITE: u8 = 0; // unvisited
    const GRAY: u8 = 1; // on the current DFS path
    const BLACK: u8 = 2; // finished
    let n = netlist.node_count();
    let mut color = vec![WHITE; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS: (node, next fanin to expand).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        stack.push((root, 0));
        color[root] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let fanins = netlist.node(NodeId::from_index(node)).fanins();
            if *next < fanins.len() {
                let fanin = fanins[*next].index();
                *next += 1;
                match color[fanin] {
                    WHITE => {
                        color[fanin] = GRAY;
                        stack.push((fanin, 0));
                    }
                    GRAY => {
                        // Back edge: the cycle is the DFS path from the
                        // gray fanin down to the current node.
                        let start = stack
                            .iter()
                            .position(|&(id, _)| id == fanin)
                            .expect("gray nodes are on the stack");
                        let path = stack[start..].iter().map(|&(id, _)| id).collect();
                        return Err(LogicError::CombinationalCycle { path });
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                order.push(NodeId::from_index(node));
                stack.pop();
            }
        }
    }
    Ok(order)
}

/// Computes the logic level of every node.
///
/// Primary inputs and constants are at level 0. Buffers are transparent
/// (they inherit their fanin's level) because they are not logic gates;
/// every other gate sits one level above its deepest fanin. The result is
/// indexed by [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use nanobound_logic::{GateKind, Netlist, topo};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("chain");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g1 = nl.add_gate(GateKind::And, &[a, b])?;
/// let g2 = nl.add_gate(GateKind::Not, &[g1])?;
/// nl.add_output("y", g2)?;
/// assert_eq!(topo::levels(&nl), vec![0, 0, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn levels(netlist: &Netlist) -> Vec<u32> {
    let mut levels = vec![0u32; netlist.node_count()];
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let Node::Gate { kind, fanins } = node {
            let deepest = fanins.iter().map(|f| levels[f.index()]).max().unwrap_or(0);
            levels[i] = match kind {
                GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Buf => deepest,
                _ => deepest + 1,
            };
        }
    }
    levels
}

/// The logic depth of the netlist: the maximum level over primary outputs.
///
/// This is the `d0` quantity of the paper (error-free logic depth). Returns
/// 0 for a netlist whose outputs are all inputs/constants or that has no
/// outputs.
#[must_use]
pub fn depth(netlist: &Netlist) -> u32 {
    let levels = levels(netlist);
    netlist
        .outputs()
        .iter()
        .map(|o| levels[o.driver.index()])
        .max()
        .unwrap_or(0)
}

/// Counts how many gate fanin slots reference each node.
///
/// Primary outputs are not counted as fanout. The result is indexed by
/// [`NodeId::index`].
#[must_use]
pub fn fanout_counts(netlist: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; netlist.node_count()];
    for node in netlist.nodes() {
        for f in node.fanins() {
            counts[f.index()] += 1;
        }
    }
    counts
}

/// Marks every node reachable from at least one primary output by walking
/// fanins transitively. The result is indexed by [`NodeId::index`].
#[must_use]
pub fn reachable_from_outputs(netlist: &Netlist) -> Vec<bool> {
    let mut reachable = vec![false; netlist.node_count()];
    for out in netlist.outputs() {
        reachable[out.driver.index()] = true;
    }
    // Reverse topological sweep: a node's reachability propagates to fanins.
    for i in (0..netlist.node_count()).rev() {
        if reachable[i] {
            for f in netlist.node(NodeId::from_index(i)).fanins() {
                reachable[f.index()] = true;
            }
        }
    }
    reachable
}

/// Ids of the nodes in the transitive fanin cone of `roots` (inclusive),
/// in topological order.
#[must_use]
pub fn cone(netlist: &Netlist, roots: &[NodeId]) -> Vec<NodeId> {
    let mut in_cone = vec![false; netlist.node_count()];
    for &r in roots {
        if r.index() < in_cone.len() {
            in_cone[r.index()] = true;
        }
    }
    for i in (0..netlist.node_count()).rev() {
        if in_cone[i] {
            for f in netlist.node(NodeId::from_index(i)).fanins() {
                in_cone[f.index()] = true;
            }
        }
    }
    in_cone
        .iter()
        .enumerate()
        .filter(|&(_i, &m)| m)
        .map(|(i, &_m)| NodeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn diamond() -> (Netlist, [NodeId; 5]) {
        // a --+--> g1 --+
        //     |         +--> g3 (output)
        // b --+--> g2 --+
        let mut nl = Netlist::new("diamond");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g3 = nl.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        nl.add_output("y", g3).unwrap();
        (nl, [a, b, g1, g2, g3])
    }

    #[test]
    fn diamond_levels_and_depth() {
        let (nl, ids) = diamond();
        let lv = levels(&nl);
        assert_eq!(lv[ids[0].index()], 0);
        assert_eq!(lv[ids[2].index()], 1);
        assert_eq!(lv[ids[4].index()], 2);
        assert_eq!(depth(&nl), 2);
    }

    #[test]
    fn buffers_are_transparent_for_depth() {
        let mut nl = Netlist::new("buffered");
        let a = nl.add_input("a");
        let b1 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let b2 = nl.add_gate(GateKind::Buf, &[b1]).unwrap();
        let g = nl.add_gate(GateKind::Not, &[b2]).unwrap();
        nl.add_output("y", g).unwrap();
        assert_eq!(depth(&nl), 1);
    }

    #[test]
    fn fanout_counts_diamond() {
        let (nl, ids) = diamond();
        let fo = fanout_counts(&nl);
        assert_eq!(fo[ids[0].index()], 2); // a feeds g1 and g2
        assert_eq!(fo[ids[2].index()], 1); // g1 feeds g3
        assert_eq!(fo[ids[4].index()], 0); // g3 only drives an output
    }

    #[test]
    fn reachability_ignores_dead_logic() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let dead = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        nl.add_output("y", live).unwrap();
        let r = reachable_from_outputs(&nl);
        assert!(r[live.index()]);
        assert!(!r[dead.index()]);
        // Inputs feeding live logic are reachable.
        assert!(r[a.index()]);
    }

    #[test]
    fn cone_is_topological_and_inclusive() {
        let (nl, ids) = diamond();
        let c = cone(&nl, &[ids[4]]);
        assert_eq!(c.len(), 5);
        for w in c.windows(2) {
            assert!(w[0] < w[1]);
        }
        let c1 = cone(&nl, &[ids[2]]);
        assert_eq!(c1, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn empty_netlist_depth_zero() {
        let nl = Netlist::new("empty");
        assert_eq!(depth(&nl), 0);
        assert!(levels(&nl).is_empty());
    }

    use crate::netlist::{Node, Output};

    /// Builds a (possibly cyclic) netlist from `(kind, fanins)` gate
    /// specs appended after one primary input.
    fn raw(gates: &[(GateKind, &[usize])]) -> Netlist {
        let mut nodes = vec![Node::Input { name: "a".into() }];
        for (kind, fanins) in gates {
            nodes.push(Node::Gate {
                kind: *kind,
                fanins: fanins.iter().map(|&i| NodeId::from_index(i)).collect(),
            });
        }
        let last = NodeId::from_index(nodes.len() - 1);
        Netlist::from_parts(
            "raw",
            nodes,
            vec![NodeId::from_index(0)],
            vec![Output {
                name: "y".into(),
                driver: last,
            }],
        )
        .unwrap()
    }

    #[test]
    fn try_topo_order_matches_ids_on_ordered_netlists() {
        let (nl, _) = diamond();
        let order = try_topo_order(&nl).unwrap();
        assert_eq!(order, nl.node_ids().collect::<Vec<_>>());
    }

    #[test]
    fn try_topo_order_handles_forward_references() {
        // n1 = Not(n2), n2 = Not(n0): out of id order but acyclic.
        let nl = raw(&[(GateKind::Not, &[2]), (GateKind::Not, &[0])]);
        let order = try_topo_order(&nl).unwrap();
        let pos = |i: usize| {
            order
                .iter()
                .position(|&id| id.index() == i)
                .expect("all nodes ordered")
        };
        assert_eq!(order.len(), 3);
        assert!(pos(0) < pos(2));
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn self_loop_witness() {
        // n1 = And(n0, n1): the tightest possible cycle.
        let nl = raw(&[(GateKind::And, &[0, 1])]);
        let err = try_topo_order(&nl).unwrap_err();
        assert_eq!(err, LogicError::CombinationalCycle { path: vec![1] });
        assert_eq!(err.to_string(), "combinational cycle: n1 -> n1");
    }

    #[test]
    fn two_cycle_witness() {
        // n1 = Nand(n0, n2), n2 = Nand(n0, n1).
        let nl = raw(&[(GateKind::Nand, &[0, 2]), (GateKind::Nand, &[0, 1])]);
        let err = try_topo_order(&nl).unwrap_err();
        assert_eq!(err, LogicError::CombinationalCycle { path: vec![1, 2] });
        assert_eq!(err.to_string(), "combinational cycle: n1 -> n2 -> n1");
    }

    #[test]
    fn cycle_through_buf_chain_witness() {
        // n1 = Or(n0, n3); n2 = Buf(n1); n3 = Buf(n2). The cycle is only
        // reachable through wiring nodes — the witness must include them.
        let nl = raw(&[
            (GateKind::Or, &[0, 3]),
            (GateKind::Buf, &[1]),
            (GateKind::Buf, &[2]),
        ]);
        let err = try_topo_order(&nl).unwrap_err();
        assert_eq!(
            err,
            LogicError::CombinationalCycle {
                path: vec![1, 3, 2]
            }
        );
        assert_eq!(err.to_string(), "combinational cycle: n1 -> n3 -> n2 -> n1");
    }
}
