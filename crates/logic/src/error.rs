//! Error types for netlist construction and manipulation.

use std::error::Error;
use std::fmt;

use crate::gate::GateKind;

/// Errors produced while building, validating or transforming a [`Netlist`].
///
/// [`Netlist`]: crate::Netlist
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A gate was given a fanin count outside the range its kind supports.
    ArityMismatch {
        /// The offending gate kind.
        kind: GateKind,
        /// The fanin count that was supplied.
        got: usize,
    },
    /// A node id referenced a node that does not exist in the netlist.
    UnknownNode {
        /// Index of the referenced node.
        id: usize,
        /// Number of nodes currently in the netlist.
        len: usize,
    },
    /// An output with the same name was already declared.
    DuplicateOutput {
        /// The duplicated output name.
        name: String,
    },
    /// An input with the same name was already declared.
    DuplicateInput {
        /// The duplicated input name.
        name: String,
    },
    /// An evaluation was given the wrong number of input values.
    AssignmentLength {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A gate referenced a fanin that does not precede it, breaking the
    /// topological-order invariant.
    FaninOrder {
        /// Index of the gate node.
        gate: usize,
        /// Index of the offending fanin.
        fanin: usize,
    },
    /// A fanin budget smaller than 2 was requested from the decomposer.
    FaninBudgetTooSmall {
        /// The requested maximum fanin.
        requested: usize,
    },
    /// The netlist has no primary outputs, so the requested analysis is
    /// meaningless.
    NoOutputs,
    /// The node graph contains a combinational cycle.
    ///
    /// Only reachable through netlists built outside the ordered
    /// [`add_gate`] path (e.g. [`from_parts`]); carries the witness as
    /// node indices in cycle order, first node repeated at neither end.
    ///
    /// [`add_gate`]: crate::Netlist::add_gate
    /// [`from_parts`]: crate::Netlist::from_parts
    CombinationalCycle {
        /// Node indices forming the cycle in dependency order: each node
        /// takes the following node as a fanin, and the last takes the
        /// first.
        path: Vec<usize>,
    },
    /// The primary-input list disagrees with the node table.
    ///
    /// Only reachable through [`from_parts`]: the `inputs` list must name
    /// exactly the `Node::Input` nodes, in id order.
    ///
    /// [`from_parts`]: crate::Netlist::from_parts
    InputListMismatch,
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::ArityMismatch { kind, got } => {
                write!(f, "gate kind {kind} does not accept {got} fanins")
            }
            LogicError::UnknownNode { id, len } => {
                write!(f, "node id {id} out of bounds for netlist of {len} nodes")
            }
            LogicError::DuplicateOutput { name } => {
                write!(f, "output `{name}` declared more than once")
            }
            LogicError::DuplicateInput { name } => {
                write!(f, "input `{name}` declared more than once")
            }
            LogicError::AssignmentLength { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            LogicError::FaninOrder { gate, fanin } => {
                write!(
                    f,
                    "gate {gate} references fanin {fanin} that does not precede it"
                )
            }
            LogicError::FaninBudgetTooSmall { requested } => {
                write!(f, "maximum fanin must be at least 2, got {requested}")
            }
            LogicError::NoOutputs => write!(f, "netlist has no primary outputs"),
            LogicError::CombinationalCycle { path } => {
                write!(f, "combinational cycle: ")?;
                for id in path {
                    write!(f, "n{id} -> ")?;
                }
                match path.first() {
                    Some(first) => write!(f, "n{first}"),
                    None => write!(f, "<empty witness>"),
                }
            }
            LogicError::InputListMismatch => {
                write!(f, "input list does not match the input nodes in id order")
            }
        }
    }
}

impl Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            LogicError::ArityMismatch {
                kind: GateKind::Maj,
                got: 2,
            },
            LogicError::UnknownNode { id: 7, len: 3 },
            LogicError::DuplicateOutput { name: "f".into() },
            LogicError::DuplicateInput { name: "a".into() },
            LogicError::AssignmentLength {
                expected: 3,
                got: 1,
            },
            LogicError::FaninOrder { gate: 4, fanin: 9 },
            LogicError::FaninBudgetTooSmall { requested: 1 },
            LogicError::NoOutputs,
            LogicError::CombinationalCycle { path: vec![3, 5] },
            LogicError::InputListMismatch,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn cycle_witness_names_the_path_and_closes_it() {
        let e = LogicError::CombinationalCycle { path: vec![3, 5] };
        assert_eq!(e.to_string(), "combinational cycle: n3 -> n5 -> n3");
        let e = LogicError::CombinationalCycle { path: vec![2] };
        assert_eq!(e.to_string(), "combinational cycle: n2 -> n2");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(LogicError::NoOutputs);
        assert!(e.source().is_none());
    }
}
