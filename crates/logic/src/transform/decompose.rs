//! Balanced decomposition of wide gates into fanin-bounded trees.

use crate::error::LogicError;
use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};

/// Rewrites the netlist so that no gate has more than `max_fanin` fanins.
///
/// Wide AND/NAND/OR/NOR/XOR/XNOR gates become balanced trees of
/// `max_fanin`-input gates of the associative core kind, with the
/// complemented kinds realized by complementing only the tree root (so a
/// 9-input NAND under `max_fanin = 3` costs four gates: three ANDs and one
/// NAND). `MAJ` is kept when `max_fanin >= 3` and expanded into its
/// AND/OR sum-of-products form otherwise.
///
/// This models the paper's mapping step onto a "generic library comprised
/// of gates with a maximum fanin of three" (Section 6).
///
/// # Errors
///
/// Returns [`LogicError::FaninBudgetTooSmall`] if `max_fanin < 2`.
///
/// # Examples
///
/// ```
/// use nanobound_logic::{CircuitStats, GateKind, Netlist, transform};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("wide_xor");
/// let ins: Vec<_> = (0..8).map(|i| nl.add_input(format!("x{i}"))).collect();
/// let g = nl.add_gate(GateKind::Xor, &ins)?;
/// nl.add_output("p", g)?;
/// let mapped = transform::decompose_to_max_fanin(&nl, 2)?;
/// assert_eq!(CircuitStats::of(&mapped).max_fanin, 2);
/// assert_eq!(CircuitStats::of(&mapped).num_gates, 7); // balanced XOR tree
/// # Ok(())
/// # }
/// ```
pub fn decompose_to_max_fanin(netlist: &Netlist, max_fanin: usize) -> Result<Netlist, LogicError> {
    if max_fanin < 2 {
        return Err(LogicError::FaninBudgetTooSmall {
            requested: max_fanin,
        });
    }
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<NodeId> = Vec::with_capacity(netlist.node_count());

    for node in netlist.nodes() {
        let new_id = match node {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Gate { kind, fanins } => {
                let mapped: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                emit_gate(&mut out, *kind, &mapped, max_fanin)?
            }
        };
        map.push(new_id);
    }
    for o in netlist.outputs() {
        out.add_output(o.name.clone(), map[o.driver.index()])?;
    }
    Ok(out)
}

/// Emits one (possibly decomposed) gate into `out` and returns the id of
/// the node computing its function.
fn emit_gate(
    out: &mut Netlist,
    kind: GateKind,
    fanins: &[NodeId],
    max_fanin: usize,
) -> Result<NodeId, LogicError> {
    if kind == GateKind::Maj && max_fanin < 3 {
        return emit_maj_sop(out, fanins);
    }
    if fanins.len() <= max_fanin {
        return out.add_gate(kind, fanins);
    }
    let (core, complemented) = kind
        .decomposition_core()
        .expect("only the AND/OR/XOR families can exceed their arity minimum");
    let mut frontier: Vec<NodeId> = fanins.to_vec();
    while frontier.len() > max_fanin {
        let mut next = Vec::with_capacity(frontier.len().div_ceil(max_fanin));
        for chunk in frontier.chunks(max_fanin) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(out.add_gate(core, chunk)?);
            }
        }
        frontier = next;
    }
    let root_kind = if complemented {
        core.complement().expect("core kinds have complements")
    } else {
        core
    };
    out.add_gate(root_kind, &frontier)
}

/// `MAJ(a, b, c)` as `OR(OR(AND(a,b), AND(a,c)), AND(b,c))` — used when the
/// fanin budget excludes 3-input gates.
fn emit_maj_sop(out: &mut Netlist, fanins: &[NodeId]) -> Result<NodeId, LogicError> {
    let (a, b, c) = (fanins[0], fanins[1], fanins[2]);
    let ab = out.add_gate(GateKind::And, &[a, b])?;
    let ac = out.add_gate(GateKind::And, &[a, c])?;
    let bc = out.add_gate(GateKind::And, &[b, c])?;
    let o1 = out.add_gate(GateKind::Or, &[ab, ac])?;
    out.add_gate(GateKind::Or, &[o1, bc])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CircuitStats;
    use crate::transform::testutil::assert_equivalent;

    fn wide(kind: GateKind, n: usize) -> Netlist {
        let mut nl = Netlist::new(format!("wide_{kind}_{n}"));
        let ins: Vec<_> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g = nl.add_gate(kind, &ins).unwrap();
        nl.add_output("y", g).unwrap();
        nl
    }

    #[test]
    fn every_reducible_kind_decomposes_equivalently() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for n in [3usize, 5, 9, 13] {
                for k in [2usize, 3, 4] {
                    let nl = wide(kind, n);
                    let mapped = decompose_to_max_fanin(&nl, k).unwrap();
                    assert!(
                        CircuitStats::of(&mapped).max_fanin <= k,
                        "{kind} n={n} k={k}"
                    );
                    assert_equivalent(&nl, &mapped);
                }
            }
        }
    }

    #[test]
    fn complement_paid_once_at_root() {
        let nl = wide(GateKind::Nand, 9);
        let mapped = decompose_to_max_fanin(&nl, 3).unwrap();
        let nands = mapped
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some(GateKind::Nand))
            .count();
        let ands = mapped
            .nodes()
            .iter()
            .filter(|n| n.kind() == Some(GateKind::And))
            .count();
        assert_eq!(nands, 1);
        assert_eq!(ands, 3);
    }

    #[test]
    fn balanced_tree_depth() {
        let nl = wide(GateKind::And, 27);
        let mapped = decompose_to_max_fanin(&nl, 3).unwrap();
        assert_eq!(CircuitStats::of(&mapped).depth, 3); // 27 -> 9 -> 3 -> 1
    }

    #[test]
    fn narrow_gates_untouched() {
        let nl = wide(GateKind::And, 3);
        let mapped = decompose_to_max_fanin(&nl, 3).unwrap();
        assert_eq!(mapped.gate_count(), 1);
    }

    #[test]
    fn maj_kept_at_k3_expanded_at_k2() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.add_gate(GateKind::Maj, &[a, b, c]).unwrap();
        nl.add_output("y", g).unwrap();

        let k3 = decompose_to_max_fanin(&nl, 3).unwrap();
        assert_eq!(k3.gate_count(), 1);
        assert_equivalent(&nl, &k3);

        let k2 = decompose_to_max_fanin(&nl, 2).unwrap();
        assert!(CircuitStats::of(&k2).max_fanin <= 2);
        assert_eq!(k2.gate_count(), 5);
        assert_equivalent(&nl, &k2);
    }

    #[test]
    fn rejects_fanin_below_two() {
        let nl = wide(GateKind::And, 4);
        assert!(matches!(
            decompose_to_max_fanin(&nl, 1),
            Err(LogicError::FaninBudgetTooSmall { requested: 1 })
        ));
    }

    #[test]
    fn inverters_and_buffers_pass_through() {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input("a");
        let n = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let bf = nl.add_gate(GateKind::Buf, &[n]).unwrap();
        nl.add_output("y", bf).unwrap();
        let mapped = decompose_to_max_fanin(&nl, 2).unwrap();
        assert_eq!(mapped.node_count(), 3);
        assert_equivalent(&nl, &mapped);
    }
}
