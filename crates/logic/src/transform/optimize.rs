//! Function-preserving cleanup passes: constant folding, buffer collapsing,
//! structural hashing and dead-gate sweeping.

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::netlist::{Netlist, Node, NodeId};
use crate::topo;

/// What an original node simplifies to in the rebuilt netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Repr {
    /// A known constant value.
    Const(bool),
    /// An existing node of the new netlist.
    Node(NodeId),
}

/// Bookkeeping for building a simplified copy of a netlist.
struct Builder {
    out: Netlist,
    const_cache: [Option<NodeId>; 2],
}

impl Builder {
    fn new(name: &str) -> Self {
        Builder {
            out: Netlist::new(name),
            const_cache: [None, None],
        }
    }

    /// Returns a node id materializing `repr`, creating a constant node on
    /// demand.
    fn materialize(&mut self, repr: Repr) -> NodeId {
        match repr {
            Repr::Node(id) => id,
            Repr::Const(v) => {
                let slot = usize::from(v);
                if let Some(id) = self.const_cache[slot] {
                    id
                } else {
                    let id = self.out.add_const(v);
                    self.const_cache[slot] = Some(id);
                    id
                }
            }
        }
    }

    fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> Repr {
        Repr::Node(
            self.out
                .add_gate(kind, fanins)
                .expect("rebuilt gate is valid"),
        )
    }

    /// Emits `x` or `NOT x`, collapsing double negation against the nodes
    /// already present in the output netlist.
    fn maybe_invert(&mut self, x: NodeId, invert: bool) -> Repr {
        if !invert {
            return Repr::Node(x);
        }
        if let Node::Gate {
            kind: GateKind::Not,
            fanins,
        } = self.out.node(x)
        {
            return Repr::Node(fanins[0]);
        }
        self.gate(GateKind::Not, &[x])
    }
}

/// Folds constants, drops neutral fanins, cancels XOR pairs, collapses
/// buffers and double inverters.
///
/// The rebuilt netlist computes the same outputs; dead nodes may remain and
/// are removed by [`sweep`].
///
/// # Examples
///
/// ```
/// use nanobound_logic::{GateKind, Netlist, transform};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("foldme");
/// let a = nl.add_input("a");
/// let one = nl.add_const(true);
/// let g = nl.add_gate(GateKind::And, &[a, one])?; // AND(a, 1) == a
/// nl.add_output("y", g)?;
/// let folded = transform::sweep(&transform::fold_constants(&nl));
/// assert_eq!(folded.gate_count(), 0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn fold_constants(netlist: &Netlist) -> Netlist {
    let mut b = Builder::new(netlist.name());
    let mut reprs: Vec<Repr> = Vec::with_capacity(netlist.node_count());

    for node in netlist.nodes() {
        let repr = match node {
            Node::Input { name } => Repr::Node(b.out.add_input(name.clone())),
            Node::Gate { kind, fanins } => {
                let fr: Vec<Repr> = fanins.iter().map(|f| reprs[f.index()]).collect();
                simplify_gate(&mut b, *kind, &fr)
            }
        };
        reprs.push(repr);
    }

    for out in netlist.outputs() {
        let repr = reprs[out.driver.index()];
        let id = b.materialize(repr);
        b.out
            .add_output(out.name.clone(), id)
            .expect("output names unique in source");
    }
    b.out
}

/// Simplifies one gate given the representations of its fanins.
fn simplify_gate(b: &mut Builder, kind: GateKind, fanins: &[Repr]) -> Repr {
    match kind {
        GateKind::Const0 => Repr::Const(false),
        GateKind::Const1 => Repr::Const(true),
        GateKind::Buf => fanins[0],
        GateKind::Not => match fanins[0] {
            Repr::Const(v) => Repr::Const(!v),
            Repr::Node(x) => b.maybe_invert(x, true),
        },
        GateKind::And | GateKind::Nand => {
            simplify_and_or(b, fanins, /* or: */ false, kind == GateKind::Nand)
        }
        GateKind::Or | GateKind::Nor => {
            simplify_and_or(b, fanins, /* or: */ true, kind == GateKind::Nor)
        }
        GateKind::Xor | GateKind::Xnor => simplify_xor(b, fanins, kind == GateKind::Xnor),
        GateKind::Maj => simplify_maj(b, fanins),
    }
}

/// Shared AND/OR simplifier; `or` selects the disjunctive dual and
/// `complement` the NAND/NOR variants.
fn simplify_and_or(b: &mut Builder, fanins: &[Repr], or: bool, complement: bool) -> Repr {
    // For AND: 0 dominates, 1 is neutral. For OR, dual.
    let dominating = or;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(fanins.len());
    for &f in fanins {
        match f {
            Repr::Const(v) if v == dominating => {
                return Repr::Const(dominating ^ complement);
            }
            Repr::Const(_) => {} // neutral, drop
            Repr::Node(x) => {
                if !nodes.contains(&x) {
                    nodes.push(x);
                }
            }
        }
    }
    // x AND NOT(x) is contradictory; x OR NOT(x) is tautological.
    for &x in &nodes {
        if let Node::Gate {
            kind: GateKind::Not,
            fanins,
        } = b.out.node(x)
        {
            if nodes.contains(&fanins[0]) {
                return Repr::Const(dominating ^ complement);
            }
        }
    }
    let base_kind = if or { GateKind::Or } else { GateKind::And };
    match nodes.len() {
        0 => Repr::Const(!dominating ^ complement),
        1 => b.maybe_invert(nodes[0], complement),
        _ => {
            if complement {
                let kind = base_kind.complement().expect("AND/OR have complements");
                b.gate(kind, &nodes)
            } else {
                b.gate(base_kind, &nodes)
            }
        }
    }
}

/// XOR/XNOR simplifier: constants fold into the parity flag, identical
/// fanin pairs cancel.
fn simplify_xor(b: &mut Builder, fanins: &[Repr], complement: bool) -> Repr {
    let mut parity = complement;
    let mut counts: HashMap<NodeId, usize> = HashMap::new();
    for &f in fanins {
        match f {
            Repr::Const(v) => parity ^= v,
            Repr::Node(x) => *counts.entry(x).or_insert(0) += 1,
        }
    }
    let mut nodes: Vec<NodeId> = counts
        .into_iter()
        .filter_map(|(x, c)| (c % 2 == 1).then_some(x))
        .collect();
    nodes.sort_unstable();
    // x XOR NOT(x) == 1: cancel complementary pairs into the parity flag.
    loop {
        let mut cancelled = None;
        'scan: for (i, &y) in nodes.iter().enumerate() {
            if let Node::Gate {
                kind: GateKind::Not,
                fanins,
            } = b.out.node(y)
            {
                if let Some(j) = nodes.iter().position(|&x| x == fanins[0]) {
                    cancelled = Some((i.max(j), i.min(j)));
                    break 'scan;
                }
            }
        }
        match cancelled {
            Some((hi, lo)) => {
                nodes.remove(hi);
                nodes.remove(lo);
                parity = !parity;
            }
            None => break,
        }
    }
    match nodes.len() {
        0 => Repr::Const(parity),
        1 => b.maybe_invert(nodes[0], parity),
        _ => {
            let kind = if parity {
                GateKind::Xnor
            } else {
                GateKind::Xor
            };
            b.gate(kind, &nodes)
        }
    }
}

/// MAJ3 simplifier: constant and duplicate absorption.
fn simplify_maj(b: &mut Builder, fanins: &[Repr]) -> Repr {
    let consts: Vec<bool> = fanins
        .iter()
        .filter_map(|f| match f {
            Repr::Const(v) => Some(*v),
            Repr::Node(_) => None,
        })
        .collect();
    let nodes: Vec<NodeId> = fanins
        .iter()
        .filter_map(|f| match f {
            Repr::Const(_) => None,
            Repr::Node(x) => Some(*x),
        })
        .collect();
    match (consts.len(), nodes.len()) {
        (0, 3) => {
            // MAJ(a, a, b) == a.
            if nodes[0] == nodes[1] || nodes[0] == nodes[2] {
                Repr::Node(nodes[0])
            } else if nodes[1] == nodes[2] {
                Repr::Node(nodes[1])
            } else {
                b.gate(GateKind::Maj, &nodes)
            }
        }
        (1, 2) => {
            if nodes[0] == nodes[1] {
                return Repr::Node(nodes[0]);
            }
            // MAJ(a, b, 1) == OR(a, b); MAJ(a, b, 0) == AND(a, b).
            let kind = if consts[0] {
                GateKind::Or
            } else {
                GateKind::And
            };
            b.gate(kind, &nodes)
        }
        (2, 1) => {
            // MAJ(a, 1, 1) == 1; MAJ(a, 0, 0) == 0; MAJ(a, 0, 1) == a.
            match (consts[0], consts[1]) {
                (true, true) => Repr::Const(true),
                (false, false) => Repr::Const(false),
                _ => Repr::Node(nodes[0]),
            }
        }
        (3, 0) => Repr::Const(consts.iter().filter(|&&v| v).count() >= 2),
        _ => unreachable!("MAJ arity is 3"),
    }
}

/// Structural hashing: replaces gates with identical (kind, fanins) by a
/// single instance. Fanins are order-normalized because every kind in the
/// library is commutative.
#[must_use]
pub fn dedupe(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<NodeId> = Vec::with_capacity(netlist.node_count());
    let mut seen: HashMap<(GateKind, Vec<NodeId>), NodeId> = HashMap::new();

    for node in netlist.nodes() {
        let new_id = match node {
            Node::Input { name } => out.add_input(name.clone()),
            Node::Gate { kind, fanins } => {
                let mut mapped: Vec<NodeId> = fanins.iter().map(|f| map[f.index()]).collect();
                if kind.is_commutative() {
                    mapped.sort_unstable();
                }
                let key = (*kind, mapped.clone());
                if let Some(&existing) = seen.get(&key) {
                    existing
                } else {
                    let id = out.add_gate(*kind, &mapped).expect("rebuilt gate is valid");
                    seen.insert(key, id);
                    id
                }
            }
        };
        map.push(new_id);
    }
    for o in netlist.outputs() {
        out.add_output(o.name.clone(), map[o.driver.index()])
            .expect("unique names");
    }
    out
}

/// Dead-gate elimination: removes nodes not reachable from any primary
/// output. Primary inputs are always kept so the interface is stable.
#[must_use]
pub fn sweep(netlist: &Netlist) -> Netlist {
    let reachable = topo::reachable_from_outputs(netlist);
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.node_count()];

    for (i, node) in netlist.nodes().iter().enumerate() {
        match node {
            Node::Input { name } => {
                map[i] = Some(out.add_input(name.clone()));
            }
            Node::Gate { kind, fanins } => {
                if reachable[i] {
                    let mapped: Vec<NodeId> = fanins
                        .iter()
                        .map(|f| map[f.index()].expect("fanin of reachable node is reachable"))
                        .collect();
                    map[i] = Some(out.add_gate(*kind, &mapped).expect("rebuilt gate is valid"));
                }
            }
        }
    }
    for o in netlist.outputs() {
        let id = map[o.driver.index()].expect("output driver is reachable");
        out.add_output(o.name.clone(), id).expect("unique names");
    }
    out
}

/// Iterates folding, hashing and sweeping to a fixed point (bounded at 8
/// rounds, which is far more than any practical netlist needs).
#[must_use]
pub fn optimize(netlist: &Netlist) -> Netlist {
    let mut current = netlist.clone();
    for _ in 0..8 {
        let next = sweep(&dedupe(&fold_constants(&current)));
        if next == current {
            break;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::testutil::assert_equivalent;

    #[test]
    fn and_with_zero_folds_to_constant() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let zero = nl.add_const(false);
        let g = nl.add_gate(GateKind::And, &[a, zero]).unwrap();
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.gate_count(), 0);
        assert_eq!(opt.evaluate(&[true]).unwrap(), vec![false]);
        assert_eq!(opt.evaluate(&[false]).unwrap(), vec![false]);
    }

    #[test]
    fn nand_with_neutral_one_becomes_inverter() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let g = nl.add_gate(GateKind::Nand, &[a, one]).unwrap();
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.gate_count(), 1);
        assert_equivalent(&nl, &opt);
    }

    #[test]
    fn xor_pair_cancellation() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b, a]).unwrap(); // == b
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.gate_count(), 0);
        assert_equivalent(&nl, &opt);
    }

    #[test]
    fn xnor_with_true_const_becomes_xor() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_const(true);
        let g = nl.add_gate(GateKind::Xnor, &[a, b, one]).unwrap(); // == XOR(a,b)
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_equivalent(&nl, &opt);
        assert_eq!(opt.gate_count(), 1);
        let kinds: Vec<_> = opt
            .nodes()
            .iter()
            .filter_map(crate::netlist::Node::kind)
            .collect();
        assert!(kinds.contains(&GateKind::Xor));
    }

    #[test]
    fn double_negation_collapses() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let n2 = nl.add_gate(GateKind::Not, &[n1]).unwrap();
        nl.add_output("y", n2).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.gate_count(), 0);
        assert_equivalent(&nl, &opt);
    }

    #[test]
    fn buffers_collapse() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b1 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let b2 = nl.add_gate(GateKind::Buf, &[b1]).unwrap();
        let g = nl.add_gate(GateKind::Not, &[b2]).unwrap();
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.node_count(), 2); // input + NOT
        assert_equivalent(&nl, &opt);
    }

    #[test]
    fn cse_merges_identical_gates_modulo_commutativity() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[b, a]).unwrap();
        let top = nl.add_gate(GateKind::Xor, &[g1, g2]).unwrap(); // == 0
        nl.add_output("y", top).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.gate_count(), 0);
        assert_equivalent(&nl, &opt);
    }

    #[test]
    fn sweep_removes_dead_logic_keeps_inputs() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        let _dead = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", live).unwrap();
        let swept = sweep(&nl);
        assert_eq!(swept.gate_count(), 1);
        assert_eq!(swept.input_count(), 2);
        assert_equivalent(&nl, &swept);
    }

    #[test]
    fn maj_simplifications() {
        // MAJ(a, b, 1) == OR(a, b)
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_const(true);
        let g = nl.add_gate(GateKind::Maj, &[a, b, one]).unwrap();
        nl.add_output("y", g).unwrap();
        let opt = optimize(&nl);
        assert_equivalent(&nl, &opt);
        let kinds: Vec<_> = opt
            .nodes()
            .iter()
            .filter_map(crate::netlist::Node::kind)
            .collect();
        assert_eq!(kinds, vec![GateKind::Or]);

        // MAJ(a, a, b) == a
        let mut nl2 = Netlist::new("g");
        let a2 = nl2.add_input("a");
        let b2 = nl2.add_input("b");
        let g2 = nl2.add_gate(GateKind::Maj, &[a2, a2, b2]).unwrap();
        nl2.add_output("y", g2).unwrap();
        let opt2 = optimize(&nl2);
        assert_eq!(opt2.gate_count(), 0);
        assert_equivalent(&nl2, &opt2);
    }

    #[test]
    fn constant_output_materialized_once() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate(GateKind::And, &[a, na]).unwrap(); // == 0
        let h = nl.add_gate(GateKind::Or, &[a, na]).unwrap(); // == 1
        nl.add_output("zero", g).unwrap();
        nl.add_output("one", h).unwrap();
        let opt = optimize(&nl);
        assert_eq!(opt.evaluate(&[true]).unwrap(), vec![false, true]);
        assert_eq!(opt.evaluate(&[false]).unwrap(), vec![false, true]);
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn optimize_reaches_fixed_point() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.add_output("y", g).unwrap();
        let once = optimize(&nl);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }
}
