//! Structural netlist transforms: a synthesis-lite flow.
//!
//! The paper prepares its benchmarks with SIS (`script.rugged`) and maps
//! them onto a generic library with a maximum fanin of three. This module is
//! the workspace's stand-in for that flow:
//!
//! - [`optimize`] — constant folding, buffer/double-inverter collapsing,
//!   structural hashing (CSE) and dead-gate sweeping, iterated to a fixed
//!   point;
//! - [`decompose_to_max_fanin`] — balanced decomposition of wide gates into
//!   trees of at-most-`k`-input gates;
//! - [`prepare`] — the composition of both, yielding the mapped netlist
//!   whose statistics (`S0`, `d0`, fanin) feed the bounds.
//!
//! All transforms are pure: they build a fresh [`Netlist`] and never mutate
//! their input. All of them preserve the circuit's Boolean function, which
//! the test-suite checks exhaustively for small circuits.
//!
//! [`Netlist`]: crate::Netlist

mod decompose;
mod optimize;

pub use decompose::decompose_to_max_fanin;
pub use optimize::{dedupe, fold_constants, optimize, sweep};

use crate::error::LogicError;
use crate::netlist::Netlist;

/// Runs the full preparation flow: optimize, map to fanin `max_fanin`,
/// optimize again.
///
/// # Errors
///
/// Returns [`LogicError::FaninBudgetTooSmall`] if `max_fanin < 2`.
///
/// # Examples
///
/// ```
/// use nanobound_logic::{GateKind, Netlist, transform};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("wide");
/// let ins: Vec<_> = (0..9).map(|i| nl.add_input(format!("x{i}"))).collect();
/// let g = nl.add_gate(GateKind::And, &ins)?;
/// nl.add_output("y", g)?;
/// let mapped = transform::prepare(&nl, 3)?;
/// let stats = nanobound_logic::CircuitStats::of(&mapped);
/// assert_eq!(stats.max_fanin, 3);
/// assert_eq!(stats.depth, 2); // 9 -> 3 -> 1 balanced tree
/// # Ok(())
/// # }
/// ```
pub fn prepare(netlist: &Netlist, max_fanin: usize) -> Result<Netlist, LogicError> {
    let optimized = optimize(netlist);
    let mapped = decompose_to_max_fanin(&optimized, max_fanin)?;
    Ok(optimize(&mapped))
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::netlist::Netlist;

    /// Exhaustively checks that two netlists with the same interface compute
    /// the same outputs (inputs must be ≤ 16 wide).
    pub fn assert_equivalent(a: &Netlist, b: &Netlist) {
        assert_eq!(a.input_count(), b.input_count(), "input arity differs");
        assert_eq!(a.output_count(), b.output_count(), "output arity differs");
        let n = a.input_count();
        assert!(n <= 16, "exhaustive check limited to 16 inputs");
        for bits in 0u32..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let va = a.evaluate(&assignment).unwrap();
            let vb = b.evaluate(&assignment).unwrap();
            assert_eq!(va, vb, "outputs differ on input {bits:0n$b}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;
    use crate::stats::CircuitStats;

    #[test]
    fn prepare_rejects_tiny_fanin() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", g).unwrap();
        assert!(matches!(
            prepare(&nl, 1),
            Err(LogicError::FaninBudgetTooSmall { .. })
        ));
    }

    #[test]
    fn prepare_preserves_function_and_bounds_fanin() {
        let mut nl = Netlist::new("mixed");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let wide_or = nl.add_gate(GateKind::Or, &ins).unwrap();
        let wide_xor = nl.add_gate(GateKind::Xor, &ins).unwrap();
        let top = nl.add_gate(GateKind::Nand, &[wide_or, wide_xor]).unwrap();
        nl.add_output("y", top).unwrap();
        let mapped = prepare(&nl, 2).unwrap();
        assert!(CircuitStats::of(&mapped).max_fanin <= 2);
        testutil::assert_equivalent(&nl, &mapped);
    }
}
