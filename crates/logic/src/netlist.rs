//! The combinational netlist data structure.

use std::fmt;

use crate::error::LogicError;
use crate::gate::GateKind;

/// Identifier of a node inside a [`Netlist`].
///
/// Node ids are dense indices; a gate's fanins always have smaller ids than
/// the gate itself, so iterating nodes in id order is a topological
/// traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Exposed for the simulator and transform crates that store per-node
    /// side tables; ids fabricated for one netlist are meaningless in
    /// another.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist larger than u32::MAX nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node of the netlist DAG: either a primary input or a gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// A primary input with a user-visible name.
    Input {
        /// Name of the input signal.
        name: String,
    },
    /// A gate applying [`GateKind`] semantics to its fanins.
    Gate {
        /// The gate's kind.
        kind: GateKind,
        /// Ids of the fanin nodes, all strictly smaller than this node's id.
        fanins: Vec<NodeId>,
    },
}

impl Node {
    /// Returns `true` for primary inputs.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// The gate kind, or `None` for primary inputs.
    #[must_use]
    pub fn kind(&self) -> Option<GateKind> {
        match self {
            Node::Input { .. } => None,
            Node::Gate { kind, .. } => Some(*kind),
        }
    }

    /// The fanin list (empty for inputs and constants).
    #[must_use]
    pub fn fanins(&self) -> &[NodeId] {
        match self {
            Node::Input { .. } => &[],
            Node::Gate { fanins, .. } => fanins,
        }
    }
}

/// A named primary output driven by some node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// Name of the output signal.
    pub name: String,
    /// The node driving this output.
    pub driver: NodeId,
}

/// A combinational netlist: a DAG of gates over named primary inputs, with
/// named primary outputs.
///
/// # Invariants
///
/// - Nodes are stored in topological order: every gate's fanins have smaller
///   ids. [`Netlist::add_gate`] enforces this by construction, and
///   [`Netlist::validate`] re-checks it (useful after deserialization).
/// - Output drivers reference existing nodes.
///
/// # Examples
///
/// ```
/// use nanobound_logic::{GateKind, Netlist};
///
/// # fn main() -> Result<(), nanobound_logic::LogicError> {
/// let mut nl = Netlist::new("mux2");
/// let s = nl.add_input("s");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let ns = nl.add_gate(GateKind::Not, &[s])?;
/// let pa = nl.add_gate(GateKind::And, &[ns, a])?;
/// let pb = nl.add_gate(GateKind::And, &[s, b])?;
/// let y = nl.add_gate(GateKind::Or, &[pa, pb])?;
/// nl.add_output("y", y)?;
/// assert_eq!(nl.evaluate(&[false, true, false])?, vec![true]);
/// assert_eq!(nl.evaluate(&[true, true, false])?, vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<Output>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Assembles a netlist from raw parts **without** the topological
    /// ordering guarantee.
    ///
    /// Deserializers and test fixtures sometimes hold node tables whose
    /// fanins reference *later* ids — including genuine combinational
    /// cycles that [`Netlist::add_gate`] makes unrepresentable. This
    /// constructor admits them so analyses like
    /// [`topo::try_topo_order`](crate::topo::try_topo_order) can report a
    /// cycle witness instead of the producer failing opaquely. Arity, id
    /// bounds, output drivers and the input list are still checked; only
    /// the fanin-order invariant is waived, so most other APIs (which
    /// assume id order) must not be used until [`Netlist::validate`]
    /// passes.
    ///
    /// # Errors
    ///
    /// [`LogicError::ArityMismatch`] for a gate with an illegal fanin
    /// count, [`LogicError::UnknownNode`] for out-of-bounds fanins or
    /// output drivers, [`LogicError::DuplicateOutput`] for repeated
    /// output names, and [`LogicError::InputListMismatch`] when `inputs`
    /// is not exactly the `Node::Input` ids in id order.
    pub fn from_parts(
        name: impl Into<String>,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<Output>,
    ) -> Result<Self, LogicError> {
        let len = nodes.len();
        for node in &nodes {
            if let Node::Gate { kind, fanins } = node {
                kind.check_arity(fanins.len())?;
                for &f in fanins {
                    if f.index() >= len {
                        return Err(LogicError::UnknownNode { id: f.index(), len });
                    }
                }
            }
        }
        let declared: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_input())
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        if inputs != declared {
            return Err(LogicError::InputListMismatch);
        }
        for (i, out) in outputs.iter().enumerate() {
            if out.driver.index() >= len {
                return Err(LogicError::UnknownNode {
                    id: out.driver.index(),
                    len,
                });
            }
            if outputs[..i].iter().any(|o| o.name == out.name) {
                return Err(LogicError::DuplicateOutput {
                    name: out.name.clone(),
                });
            }
        }
        Ok(Netlist {
            name: name.into(),
            nodes,
            inputs,
            outputs,
        })
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its node id.
    ///
    /// Input names are not required to be unique here (the `.bench` parser
    /// enforces uniqueness at its own level), but unique names make reports
    /// much more readable.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Adds a gate and returns its node id.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ArityMismatch`] if the fanin count is invalid
    /// for `kind`, or [`LogicError::UnknownNode`] if a fanin id does not
    /// reference an existing node. Because the new gate receives the largest
    /// id so far, referencing only existing nodes keeps the netlist
    /// topologically ordered.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> Result<NodeId, LogicError> {
        kind.check_arity(fanins.len())?;
        for &f in fanins {
            if f.index() >= self.nodes.len() {
                return Err(LogicError::UnknownNode {
                    id: f.index(),
                    len: self.nodes.len(),
                });
            }
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::Gate {
            kind,
            fanins: fanins.to_vec(),
        });
        Ok(id)
    }

    /// Adds a constant node.
    ///
    /// Convenience wrapper over [`Netlist::add_gate`] with
    /// [`GateKind::Const0`]/[`GateKind::Const1`].
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.add_gate(kind, &[]).expect("constants have arity 0")
    }

    /// Declares `driver` as the primary output named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UnknownNode`] if `driver` does not exist and
    /// [`LogicError::DuplicateOutput`] if the name is already taken.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        driver: NodeId,
    ) -> Result<(), LogicError> {
        let name = name.into();
        if driver.index() >= self.nodes.len() {
            return Err(LogicError::UnknownNode {
                id: driver.index(),
                len: self.nodes.len(),
            });
        }
        if self.outputs.iter().any(|o| o.name == name) {
            return Err(LogicError::DuplicateOutput { name });
        }
        self.outputs.push(Output { name, driver });
        Ok(())
    }

    /// The node with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds; ids obtained from this netlist are
    /// always in bounds.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes (inputs + gates + constants + buffers).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the netlist contains no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in topological order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Primary input ids, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (excludes inputs, constants and buffers).
    ///
    /// This is the `S0` quantity of the paper: the device count that scales
    /// load capacitance and leakage.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind().is_some_and(GateKind::counts_as_gate))
            .count()
    }

    /// The name of an input or output signal driven by `id`, if any output
    /// refers to it, otherwise a synthesized `n<id>` name.
    #[must_use]
    pub fn signal_name(&self, id: NodeId) -> String {
        if let Node::Input { name } = self.node(id) {
            return name.clone();
        }
        if let Some(out) = self.outputs.iter().find(|o| o.driver == id) {
            return out.name.clone();
        }
        format!("{id}")
    }

    /// Re-checks every structural invariant.
    ///
    /// Useful after constructing a netlist through non-`add_gate` paths
    /// (e.g. deserialization); netlists built exclusively through the public
    /// mutators always validate.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: fanin ordering, arity, or
    /// dangling output drivers.
    pub fn validate(&self) -> Result<(), LogicError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Gate { kind, fanins } = node {
                kind.check_arity(fanins.len())?;
                for &f in fanins {
                    if f.index() >= i {
                        return Err(LogicError::FaninOrder {
                            gate: i,
                            fanin: f.index(),
                        });
                    }
                }
            }
        }
        for out in &self.outputs {
            if out.driver.index() >= self.nodes.len() {
                return Err(LogicError::UnknownNode {
                    id: out.driver.index(),
                    len: self.nodes.len(),
                });
            }
        }
        Ok(())
    }

    /// Evaluates every node under the given primary-input assignment and
    /// returns one value per node.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::AssignmentLength`] if `assignment` does not
    /// match the number of primary inputs.
    pub fn evaluate_nodes(&self, assignment: &[bool]) -> Result<Vec<bool>, LogicError> {
        if assignment.len() != self.inputs.len() {
            return Err(LogicError::AssignmentLength {
                expected: self.inputs.len(),
                got: assignment.len(),
            });
        }
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        let mut fanin_buf: Vec<bool> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Input { .. } => {
                    values[i] = assignment[next_input];
                    next_input += 1;
                }
                Node::Gate { kind, fanins } => {
                    fanin_buf.clear();
                    fanin_buf.extend(fanins.iter().map(|f| values[f.index()]));
                    values[i] = kind.eval_bools(&fanin_buf);
                }
            }
        }
        Ok(values)
    }

    /// Instantiates `other` as a sub-circuit of `self`.
    ///
    /// `other`'s primary inputs are wired to the given `inputs` nodes (in
    /// declaration order); all of its gates are copied. Returns the nodes
    /// now computing `other`'s primary outputs, in declaration order.
    /// `other`'s output *names* are not imported — the caller decides what
    /// to expose.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::AssignmentLength`] if `inputs` does not match
    /// `other`'s input count and [`LogicError::UnknownNode`] if any supplied
    /// id does not exist in `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nanobound_logic::{GateKind, Netlist};
    ///
    /// # fn main() -> Result<(), nanobound_logic::LogicError> {
    /// let mut half_adder = Netlist::new("ha");
    /// let a = half_adder.add_input("a");
    /// let b = half_adder.add_input("b");
    /// let s = half_adder.add_gate(GateKind::Xor, &[a, b])?;
    /// let c = half_adder.add_gate(GateKind::And, &[a, b])?;
    /// half_adder.add_output("s", s)?;
    /// half_adder.add_output("c", c)?;
    ///
    /// let mut top = Netlist::new("top");
    /// let x = top.add_input("x");
    /// let y = top.add_input("y");
    /// let outs = top.import(&half_adder, &[x, y])?;
    /// top.add_output("sum", outs[0])?;
    /// assert_eq!(top.evaluate(&[true, true])?, vec![false]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn import(
        &mut self,
        other: &Netlist,
        inputs: &[NodeId],
    ) -> Result<Vec<NodeId>, LogicError> {
        if inputs.len() != other.input_count() {
            return Err(LogicError::AssignmentLength {
                expected: other.input_count(),
                got: inputs.len(),
            });
        }
        for &id in inputs {
            if id.index() >= self.nodes.len() {
                return Err(LogicError::UnknownNode {
                    id: id.index(),
                    len: self.nodes.len(),
                });
            }
        }
        let mut map: Vec<NodeId> = Vec::with_capacity(other.node_count());
        let mut next_input = 0;
        let mut fanin_buf: Vec<NodeId> = Vec::new();
        for node in other.nodes() {
            let new_id = match node {
                Node::Input { .. } => {
                    let id = inputs[next_input];
                    next_input += 1;
                    id
                }
                Node::Gate { kind, fanins } => {
                    fanin_buf.clear();
                    fanin_buf.extend(fanins.iter().map(|f| map[f.index()]));
                    self.add_gate(*kind, &fanin_buf)?
                }
            };
            map.push(new_id);
        }
        Ok(other
            .outputs()
            .iter()
            .map(|o| map[o.driver.index()])
            .collect())
    }

    /// Evaluates the primary outputs under the given input assignment.
    ///
    /// This is a convenience single-vector evaluator; use
    /// `nanobound-sim`'s bit-parallel engine for bulk simulation.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::AssignmentLength`] if `assignment` does not
    /// match the number of primary inputs.
    pub fn evaluate(&self, assignment: &[bool]) -> Result<Vec<bool>, LogicError> {
        let values = self.evaluate_nodes(assignment)?;
        Ok(self
            .outputs
            .iter()
            .map(|o| values[o.driver.index()])
            .collect())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} nodes",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gate_count(),
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2(nl: &mut Netlist) -> NodeId {
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.add_gate(GateKind::Xor, &[a, b]).unwrap()
    }

    #[test]
    fn build_and_evaluate_xor() {
        let mut nl = Netlist::new("x");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        assert_eq!(nl.evaluate(&[false, false]).unwrap(), vec![false]);
        assert_eq!(nl.evaluate(&[true, false]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate(&[false, true]).unwrap(), vec![true]);
        assert_eq!(nl.evaluate(&[true, true]).unwrap(), vec![false]);
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let err = nl.add_gate(GateKind::Maj, &[a, a]).unwrap_err();
        assert!(matches!(err, LogicError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let bogus = NodeId::from_index(17);
        let err = nl.add_gate(GateKind::Not, &[bogus]).unwrap_err();
        assert!(matches!(err, LogicError::UnknownNode { id: 17, .. }));
        let _ = a;
    }

    #[test]
    fn duplicate_output_rejected() {
        let mut nl = Netlist::new("x");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        let err = nl.add_output("y", y).unwrap_err();
        assert!(matches!(err, LogicError::DuplicateOutput { .. }));
    }

    #[test]
    fn dangling_output_rejected() {
        let mut nl = Netlist::new("x");
        let _ = xor2(&mut nl);
        let err = nl.add_output("y", NodeId::from_index(99)).unwrap_err();
        assert!(matches!(err, LogicError::UnknownNode { .. }));
    }

    #[test]
    fn assignment_length_checked() {
        let mut nl = Netlist::new("x");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        let err = nl.evaluate(&[true]).unwrap_err();
        assert_eq!(
            err,
            LogicError::AssignmentLength {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn gate_count_excludes_buffers_and_constants() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let buf = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let c = nl.add_const(true);
        let g = nl.add_gate(GateKind::And, &[buf, c]).unwrap();
        let inv = nl.add_gate(GateKind::Not, &[g]).unwrap();
        nl.add_output("y", inv).unwrap();
        assert_eq!(nl.gate_count(), 2); // And + Not
        assert_eq!(nl.node_count(), 5);
    }

    #[test]
    fn validate_accepts_builder_output() {
        let mut nl = Netlist::new("x");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        nl.validate().unwrap();
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new("k");
        let one = nl.add_const(true);
        let zero = nl.add_const(false);
        nl.add_output("one", one).unwrap();
        nl.add_output("zero", zero).unwrap();
        assert_eq!(nl.evaluate(&[]).unwrap(), vec![true, false]);
    }

    #[test]
    fn signal_names() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("alpha");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.add_output("out", g).unwrap();
        assert_eq!(nl.signal_name(a), "alpha");
        assert_eq!(nl.signal_name(g), "out");
    }

    #[test]
    fn display_mentions_counts() {
        let mut nl = Netlist::new("adder");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        let s = nl.to_string();
        assert!(s.contains("adder"));
        assert!(s.contains("2 inputs"));
    }

    #[test]
    fn import_wires_subcircuit() {
        let mut inv = Netlist::new("inv");
        let a = inv.add_input("a");
        let g = inv.add_gate(GateKind::Not, &[a]).unwrap();
        inv.add_output("y", g).unwrap();

        let mut top = Netlist::new("top");
        let x = top.add_input("x");
        let o1 = top.import(&inv, &[x]).unwrap();
        let o2 = top.import(&inv, &o1).unwrap(); // double inversion
        top.add_output("y", o2[0]).unwrap();
        assert_eq!(top.evaluate(&[true]).unwrap(), vec![true]);
        assert_eq!(top.evaluate(&[false]).unwrap(), vec![false]);
        assert_eq!(top.gate_count(), 2);
    }

    #[test]
    fn import_checks_input_arity() {
        let mut inv = Netlist::new("inv");
        let a = inv.add_input("a");
        let g = inv.add_gate(GateKind::Not, &[a]).unwrap();
        inv.add_output("y", g).unwrap();

        let mut top = Netlist::new("top");
        let err = top.import(&inv, &[]).unwrap_err();
        assert_eq!(
            err,
            LogicError::AssignmentLength {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn import_checks_node_existence() {
        let mut inv = Netlist::new("inv");
        let a = inv.add_input("a");
        let g = inv.add_gate(GateKind::Not, &[a]).unwrap();
        inv.add_output("y", g).unwrap();

        let mut top = Netlist::new("top");
        let err = top.import(&inv, &[NodeId::from_index(5)]).unwrap_err();
        assert!(matches!(err, LogicError::UnknownNode { id: 5, .. }));
    }

    #[test]
    fn from_parts_admits_forward_references() {
        // n0 = Not(n1), n1 = input: representable only through from_parts.
        let nodes = vec![
            Node::Gate {
                kind: GateKind::Not,
                fanins: vec![NodeId::from_index(1)],
            },
            Node::Input { name: "a".into() },
        ];
        let nl = Netlist::from_parts(
            "fwd",
            nodes,
            vec![NodeId::from_index(1)],
            vec![Output {
                name: "y".into(),
                driver: NodeId::from_index(0),
            }],
        )
        .unwrap();
        assert_eq!(nl.node_count(), 2);
        // The order invariant is (deliberately) violated.
        assert!(matches!(
            nl.validate().unwrap_err(),
            LogicError::FaninOrder { gate: 0, fanin: 1 }
        ));
    }

    #[test]
    fn from_parts_still_checks_everything_but_order() {
        let input = || Node::Input { name: "a".into() };
        let err = Netlist::from_parts(
            "bad",
            vec![Node::Gate {
                kind: GateKind::Maj,
                fanins: vec![NodeId::from_index(0)],
            }],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::ArityMismatch { .. }));

        let err = Netlist::from_parts(
            "bad",
            vec![Node::Gate {
                kind: GateKind::Not,
                fanins: vec![NodeId::from_index(9)],
            }],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::UnknownNode { id: 9, .. }));

        let err = Netlist::from_parts("bad", vec![input()], vec![], vec![]).unwrap_err();
        assert_eq!(err, LogicError::InputListMismatch);

        let err = Netlist::from_parts(
            "bad",
            vec![input()],
            vec![NodeId::from_index(0)],
            vec![Output {
                name: "y".into(),
                driver: NodeId::from_index(4),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::UnknownNode { id: 4, .. }));

        let out = |name: &str| Output {
            name: name.into(),
            driver: NodeId::from_index(0),
        };
        let err = Netlist::from_parts(
            "bad",
            vec![input()],
            vec![NodeId::from_index(0)],
            vec![out("y"), out("y")],
        )
        .unwrap_err();
        assert!(matches!(err, LogicError::DuplicateOutput { .. }));
    }

    #[test]
    fn node_ids_are_topological() {
        let mut nl = Netlist::new("x");
        let y = xor2(&mut nl);
        nl.add_output("y", y).unwrap();
        for id in nl.node_ids() {
            for &f in nl.node(id).fanins() {
                assert!(f < id);
            }
        }
    }
}
