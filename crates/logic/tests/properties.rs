//! Property-based tests for the synthesis-lite transforms and the
//! structural cone identity: every pass must preserve the Boolean
//! function of arbitrary random circuits and respect its structural
//! contract, and the cone hash must agree with cone isomorphism on
//! arbitrary random DAGs.

use proptest::prelude::*;

use nanobound_logic::cone::cone_events;
use nanobound_logic::transform::{
    decompose_to_max_fanin, dedupe, fold_constants, optimize, prepare, sweep,
};
use nanobound_logic::{
    cone_hash, extract_cone, output_cone_hashes, CircuitStats, GateKind, Netlist, NodeId,
};

/// A deterministic random netlist generator, independent of the
/// `nanobound-gen` crate (which depends on this one).
fn build_random(netlist_seed: u64, inputs: usize, gates: usize) -> Netlist {
    // xorshift64* — deterministic, no external dependency.
    let mut state = netlist_seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    let mut nl = Netlist::new("prop");
    let mut pool: Vec<NodeId> = (0..inputs).map(|i| nl.add_input(format!("x{i}"))).collect();
    const KINDS: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    for g in 0..gates {
        let kind = KINDS[(next() % KINDS.len() as u64) as usize];
        let arity = match kind {
            GateKind::Not | GateKind::Buf => 1,
            _ => 2 + (next() % 4) as usize, // fanin 2..=5
        };
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| pool[(next() % pool.len() as u64) as usize])
            .collect();
        let id = nl.add_gate(kind, &fanins).expect("valid construction");
        pool.push(id);
        if g % 5 == 0 {
            // Sprinkle constants to exercise folding.
            pool.push(nl.add_const(next() % 2 == 0));
        }
    }
    let gate_pool = &pool[inputs..];
    for i in 0..2.min(gate_pool.len()) {
        nl.add_output(format!("y{i}"), gate_pool[gate_pool.len() - 1 - i])
            .unwrap();
    }
    nl
}

/// Rebuilds `nl` node-for-node under fresh signal names: the structure
/// (and hence every structural fingerprint) is untouched, only names
/// change.
fn renamed(nl: &Netlist) -> Netlist {
    let mut out = Netlist::new("renamed");
    let mut map: Vec<NodeId> = Vec::with_capacity(nl.node_count());
    for (i, node) in nl.nodes().iter().enumerate() {
        let id = match node.kind() {
            None => out.add_input(format!("renamed_in{i}")),
            Some(GateKind::Const0) => out.add_const(false),
            Some(GateKind::Const1) => out.add_const(true),
            Some(kind) => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f.index()]).collect();
                out.add_gate(kind, &fanins).expect("same valid structure")
            }
        };
        map.push(id);
    }
    for (i, output) in nl.outputs().iter().enumerate() {
        out.add_output(format!("renamed_out{i}"), map[output.driver.index()])
            .expect("same valid driver");
    }
    out
}

fn exhaustively_equivalent(a: &Netlist, b: &Netlist) -> bool {
    assert!(a.input_count() <= 10);
    (0..1u32 << a.input_count()).all(|v| {
        let bits: Vec<bool> = (0..a.input_count()).map(|i| v >> i & 1 == 1).collect();
        a.evaluate(&bits).unwrap() == b.evaluate(&bits).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_passes_preserve_function(
        seed in any::<u64>(),
        inputs in 1usize..=7,
        gates in 1usize..=30,
    ) {
        let nl = build_random(seed, inputs, gates);
        for (name, transformed) in [
            ("fold", fold_constants(&nl)),
            ("dedupe", dedupe(&nl)),
            ("sweep", sweep(&nl)),
            ("optimize", optimize(&nl)),
        ] {
            prop_assert!(exhaustively_equivalent(&nl, &transformed),
                "{} changed the function", name);
            transformed.validate().unwrap();
        }
    }

    #[test]
    fn decomposition_preserves_function_and_budget(
        seed in any::<u64>(),
        inputs in 1usize..=6,
        gates in 1usize..=25,
        budget in 2usize..=4,
    ) {
        let nl = build_random(seed, inputs, gates);
        let mapped = decompose_to_max_fanin(&nl, budget).unwrap();
        prop_assert!(exhaustively_equivalent(&nl, &mapped));
        prop_assert!(CircuitStats::of(&mapped).max_fanin <= budget);
        mapped.validate().unwrap();
    }

    #[test]
    fn prepare_never_grows_depth_times_budget(
        seed in any::<u64>(),
        inputs in 1usize..=6,
        gates in 1usize..=25,
    ) {
        let nl = build_random(seed, inputs, gates);
        let mapped = prepare(&nl, 3).unwrap();
        prop_assert!(exhaustively_equivalent(&nl, &mapped));
        // Optimization must never *increase* the gate count.
        let before = optimize(&nl).gate_count();
        prop_assert!(mapped.gate_count() <= before.max(nl.gate_count()) * 4,
            "mapping blow-up: {} -> {}", nl.gate_count(), mapped.gate_count());
    }

    #[test]
    fn optimize_is_idempotent(
        seed in any::<u64>(),
        inputs in 1usize..=6,
        gates in 1usize..=25,
    ) {
        let once = optimize(&build_random(seed, inputs, gates));
        let twice = optimize(&once);
        prop_assert_eq!(once.gate_count(), twice.gate_count());
        prop_assert!(exhaustively_equivalent(&once, &twice));
    }

    #[test]
    fn cone_hashes_are_name_invariant(
        seed in any::<u64>(),
        inputs in 1usize..=7,
        gates in 1usize..=30,
    ) {
        let nl = build_random(seed, inputs, gates);
        prop_assert_eq!(output_cone_hashes(&nl), output_cone_hashes(&renamed(&nl)));
    }

    #[test]
    fn cone_hash_equality_is_exactly_cone_isomorphism(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        inputs in 1usize..=6,
        gates in 1usize..=20,
    ) {
        // Half the cases compare against a renamed rebuild (many
        // isomorphic cone pairs, including every reconvergent shape the
        // generator produces); the other half against an independent
        // random DAG (mostly non-isomorphic pairs). The canonical event
        // stream *is* rooted ordered-DAG isomorphism by construction,
        // so hash equality must coincide with it on every pair.
        let a = build_random(seed_a, inputs, gates);
        let b = if seed_b % 2 == 0 {
            renamed(&a)
        } else {
            build_random(seed_b, inputs, gates)
        };
        for ra in a.node_ids() {
            for rb in b.node_ids() {
                let hashes_equal = cone_hash(&a, ra) == cone_hash(&b, rb);
                let isomorphic = cone_events(&a, ra) == cone_events(&b, rb);
                prop_assert_eq!(
                    hashes_equal, isomorphic,
                    "root {:?} vs {:?}", ra, rb
                );
            }
        }
    }

    #[test]
    fn extracted_cones_keep_their_hashes(
        seed in any::<u64>(),
        inputs in 1usize..=7,
        gates in 1usize..=30,
    ) {
        let nl = build_random(seed, inputs, gates);
        let all: Vec<usize> = (0..nl.output_count()).collect();
        let mut selections: Vec<Vec<usize>> = all.iter().map(|&i| vec![i]).collect();
        selections.push(all.clone());
        if all.len() > 1 {
            selections.push(all.iter().rev().copied().collect());
        }
        for outputs in selections {
            let (child, kept) = extract_cone(&nl, &outputs);
            child.validate().unwrap();
            prop_assert!(
                kept.windows(2).all(|w| w[0].index() < w[1].index()),
                "kept nodes must stay in parent order"
            );
            let child_hashes = output_cone_hashes(&child);
            for (slot, &oi) in outputs.iter().enumerate() {
                prop_assert_eq!(
                    child_hashes[slot],
                    cone_hash(&nl, nl.outputs()[oi].driver),
                    "slot {} (parent output {})", slot, oi
                );
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent(
        seed in any::<u64>(),
        inputs in 1usize..=7,
        gates in 1usize..=30,
    ) {
        let nl = build_random(seed, inputs, gates);
        let stats = CircuitStats::of(&nl);
        prop_assert_eq!(stats.num_inputs, nl.input_count());
        prop_assert_eq!(stats.num_gates, nl.gate_count());
        let histogram_total: usize = stats.fanin_histogram.values().sum();
        prop_assert_eq!(histogram_total, stats.num_gates);
        if stats.num_gates > 0 {
            prop_assert!(stats.avg_fanin <= stats.max_fanin as f64 + 1e-12);
        }
    }
}
