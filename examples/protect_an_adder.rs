//! Protecting a ripple-carry adder: constructive schemes vs the bound.
//!
//! Takes an 8-bit ripple-carry adder built from ε-noisy gates, applies
//! the two classical redundancy schemes (triple-modular redundancy and
//! von Neumann NAND multiplexing), measures what reliability each one
//! *actually* achieves by Monte-Carlo fault injection, and puts their
//! gate cost against the paper's complexity-theoretic lower bound at the
//! achieved reliability.
//!
//! Run: `cargo run --release --example protect_an_adder`

use nanobound::core::size::strict_size_factor;
use nanobound::gen::adder;
use nanobound::redundancy::{multiplex, nmr, MultiplexConfig};
use nanobound::report::{Cell, Table};
use nanobound::sim::{monte_carlo, sensitivity, NoisyConfig};

const EPSILON: f64 = 0.002;
const PATTERNS: usize = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rca = adder::ripple_carry(8)?;
    let s0 = rca.gate_count() as f64;
    let s = f64::from(sensitivity::estimate(&rca, 512, 1)?.value());
    println!("circuit: {rca}");
    println!("gate error probability: {EPSILON}\n");

    let candidates: Vec<(&str, nanobound::logic::Netlist)> = vec![
        ("bare", rca.clone()),
        ("TMR", nmr(&rca, 3)?),
        ("5MR", nmr(&rca, 5)?),
        (
            "mux n=5",
            multiplex(
                &rca,
                &MultiplexConfig {
                    bundle: 5,
                    restorative_stages: 1,
                    seed: 3,
                },
            )?,
        ),
        (
            "mux n=9",
            multiplex(
                &rca,
                &MultiplexConfig {
                    bundle: 9,
                    restorative_stages: 1,
                    seed: 3,
                },
            )?,
        ),
    ];

    let mut table = Table::new(
        "protection schemes at eps = 0.002 (8-bit ripple-carry adder)",
        [
            "scheme",
            "gates",
            "size factor",
            "achieved delta",
            "bound size factor",
            "slack",
        ],
    );
    let config = NoisyConfig::new(EPSILON, 11)?;
    for (name, netlist) in &candidates {
        let outcome = monte_carlo(netlist, &config, PATTERNS, 13)?;
        let achieved = outcome.circuit_error_rate;
        let actual_factor = netlist.gate_count() as f64 / s0;
        // The strict (total-size) reading of Theorem 2 at the reliability
        // this scheme actually delivers.
        let bound = strict_size_factor(s0, s, 2.0, EPSILON, achieved.clamp(1e-9, 0.499))?;
        table.push_row([
            Cell::from(*name),
            Cell::from(netlist.gate_count()),
            Cell::from(actual_factor),
            Cell::from(achieved),
            Cell::from(bound),
            Cell::from(actual_factor - bound),
        ])?;
    }
    println!("{table}");
    println!(
        "Every real scheme pays far more than the information-theoretic\n\
         minimum — the gap the paper attributes to redundancy schemes being\n\
         'committed' to one mechanism (voting, bundles) instead of the\n\
         optimal code-like use of extra gates."
    );
    Ok(())
}
