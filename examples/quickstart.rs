//! Quickstart: measure a circuit, evaluate every bound of the paper.
//!
//! Builds the paper's running example (a 10-input parity function), runs
//! the measurement pipeline (optimize → map to fanin 3 → simulate →
//! sensitivity), and prints the full bound report at the paper's
//! headline operating point: 1% gate errors, 99% required reliability.
//!
//! Run: `cargo run --example quickstart`

use nanobound::core::{BoundReport, DepthBound};
use nanobound::experiments::profiles::{profile_netlist, ProfileConfig};
use nanobound::gen::parity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A real netlist: 10-input parity, XOR-3 tree.
    let tree = parity::parity_tree(10, 3)?;
    println!("circuit : {tree}");

    // 2. Measure the parameters the bounds need.
    let profiled = profile_netlist(&tree, None, &ProfileConfig::default())?;
    println!("profile : {}", profiled.profile);

    // 3. Evaluate Theorems 1-4 and the composite metrics.
    let (epsilon, delta) = (0.01, 0.01);
    let report = BoundReport::evaluate(&profiled.profile, epsilon, delta)?;
    println!("\nbounds at eps = {epsilon}, delta = {delta}:");
    println!(
        "  noisy activity (Thm 1)      : {:.4}",
        report.noisy_activity
    );
    println!(
        "  added gates (Thm 2)         : >= {:.2}",
        report.redundancy_gates
    );
    println!(
        "  size factor                 : >= {:.3}x",
        report.size_factor
    );
    println!(
        "  switching energy (Cor 2)    : >= {:.3}x",
        report.switching_energy_factor
    );
    println!(
        "  leakage/switching (Thm 3)   : {:.3}x",
        report.leakage_ratio_factor
    );
    println!(
        "  total energy (leak 50%)     : >= {:.3}x",
        report.total_energy_factor
    );
    match report.depth_bound {
        DepthBound::Bounded(levels) => {
            println!("  logic depth (Thm 4)         : >= {levels:.2} levels");
        }
        DepthBound::NoKnownBound => println!("  logic depth (Thm 4)         : no known bound"),
        DepthBound::Infeasible { max_inputs } => {
            println!("  reliable computation IMPOSSIBLE beyond {max_inputs:.1} inputs");
        }
    }
    if let (Some(d), Some(p), Some(edp)) = (
        report.delay_factor,
        report.average_power_factor,
        report.energy_delay_factor,
    ) {
        println!("  delay                       : >= {d:.3}x");
        println!("  average power               : >= {p:.3}x");
        println!("  energy x delay              : >= {edp:.3}x");
    }

    // 4. The same trade-off across the error-rate axis.
    println!("\nenergy lower bound vs gate error (delta = {delta}):");
    for eps in [0.0001, 0.001, 0.01, 0.05, 0.1, 0.2] {
        let r = BoundReport::evaluate(&profiled.profile, eps, delta)?;
        println!(
            "  eps = {eps:<7}: energy >= {:.3}x, size >= {:.3}x",
            r.total_energy_factor, r.size_factor
        );
    }
    Ok(())
}
