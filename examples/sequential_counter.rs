//! Sequential circuits via time-frame expansion — the paper's stated
//! future work ("treatment of sequential circuits"), realized with the
//! standard unrolling reduction.
//!
//! A 4-bit counter (parsed from ISCAS `.bench` text with `DFF`s) is
//! unrolled over a growing number of time frames; each unrolled circuit
//! is combinational, so the whole measurement-and-bounds pipeline
//! applies unchanged. The bounds then speak about *T cycles of
//! operation*: per-frame energy stays flat while the depth (and with it
//! the delay bound) accumulates.
//!
//! Run: `cargo run --release --example sequential_counter`

use nanobound::core::BoundReport;
use nanobound::experiments::profiles::{profile_netlist, ProfileConfig};
use nanobound::io::{bench, unroll};
use nanobound::report::{Cell, Table};

/// A 4-bit synchronous counter with enable, in ISCAS `.bench` syntax.
const COUNTER: &str = "\
INPUT(en)
OUTPUT(b0)
OUTPUT(b1)
OUTPUT(b2)
OUTPUT(b3)
q0 = DFF(n0)
q1 = DFF(n1)
q2 = DFF(n2)
q3 = DFF(n3)
n0 = XOR(q0, en)
c0 = AND(q0, en)
n1 = XOR(q1, c0)
c1 = AND(q1, c0)
n2 = XOR(q2, c1)
c2 = AND(q2, c1)
n3 = XOR(q3, c2)
b0 = BUFF(q0)
b1 = BUFF(q1)
b2 = BUFF(q2)
b3 = BUFF(q3)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = bench::parse(COUNTER)?;
    println!(
        "parsed sequential design: {} ({} latches)\n",
        design.netlist,
        design.latches.len()
    );

    let mut table = Table::new(
        "4-bit counter unrolled over T frames — bounds at eps = 1%, delta = 1%",
        [
            "frames",
            "S0",
            "depth",
            "sw0",
            "energy bound",
            "delay bound",
            "EDP bound",
        ],
    );
    let config = ProfileConfig::default();
    for frames in [1usize, 2, 4, 8, 16] {
        let unrolled = unroll::unroll_free(&design, frames)?;
        let profiled = profile_netlist(&unrolled, None, &config)?;
        let report = BoundReport::evaluate(&profiled.profile, 0.01, 0.01)?;
        table.push_row([
            Cell::from(frames),
            Cell::from(profiled.profile.size),
            Cell::from(profiled.profile.depth as usize),
            Cell::from(profiled.profile.activity),
            Cell::from(report.total_energy_factor),
            Cell::from(report.delay_factor),
            Cell::from(report.energy_delay_factor),
        ])?;
    }
    println!("{table}");
    println!(
        "The energy bound is nearly frame-independent (per-cycle logic is\n\
         replicated), while unrolling verifies that the sequential design's\n\
         function — counting — survives the combinational reduction."
    );

    // Behavioural sanity check printed for the skeptical reader:
    let five = unroll::unroll(&design, 5, &[false; 4])?;
    let outs = five.evaluate(&[true; 5])?;
    let states: Vec<u8> = (0..5)
        .map(|t| (0..4).fold(0u8, |acc, b| acc | (u8::from(outs[4 * t + b]) << b)))
        .collect();
    println!("\ncounting check over 5 enabled frames: {states:?}");
    Ok(())
}
