//! Design-space exploration for a fault-tolerant ALU.
//!
//! The scenario the paper's introduction motivates: a designer must pick
//! a gate library (fanin), an error-tolerance target and a supply
//! voltage for a datapath block built from unreliable nanoscale devices.
//! This example walks an 8-bit ALU (the `c880` class) through:
//!
//! 1. the feasibility map — which (ε, k) combinations admit reliable
//!    computation at all (Theorem 4's `ξ² > 1/k` threshold);
//! 2. the cost surface — energy/delay/power bound factors across ε;
//! 3. Vdd scaling — what iso-energy and iso-delay operation of the
//!    fault-tolerant variant cost on a 90 nm technology model.
//!
//! Run: `cargo run --example design_space`

use nanobound::core::depth::feasibility_threshold;
use nanobound::core::BoundReport;
use nanobound::energy::{
    at_nominal, iso_delay_vdd, iso_energy_vdd, BaselineCircuit, FaultTolerantVariant, Technology,
};
use nanobound::experiments::profiles::{profile_netlist, ProfileConfig};
use nanobound::gen::alu;
use nanobound::report::{Cell, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alu = alu::alu(8)?;
    let profiled = profile_netlist(&alu, None, &ProfileConfig::default())?;
    let profile = &profiled.profile;
    println!("{}\n", profile);

    // 1. Feasibility: the largest tolerable gate error per library fanin.
    println!("feasibility thresholds (Theorem 4): reliable computation of");
    println!("arbitrarily wide functions requires eps < (1 - k^-1/2)/2:");
    for k in [2.0, 3.0, 4.0, 8.0] {
        println!("  k = {k}: eps* = {:.4}", feasibility_threshold(k));
    }

    // 2. Cost surface across the error axis at delta = 1%.
    let mut table = Table::new(
        format!("{} — bound factors vs eps (delta = 0.01)", profile.name),
        ["eps", "size", "energy", "delay", "power", "EDP"],
    );
    for eps in [0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.15, 0.2] {
        let r = BoundReport::evaluate(profile, eps, 0.01)?;
        table.push_row([
            Cell::from(eps),
            Cell::from(r.size_factor),
            Cell::from(r.total_energy_factor),
            Cell::from(r.delay_factor),
            Cell::from(r.average_power_factor),
            Cell::from(r.energy_delay_factor),
        ])?;
    }
    println!("\n{table}");

    // 3. Voltage scaling of the eps = 1% fault-tolerant variant.
    let report = BoundReport::evaluate(profile, 0.01, 0.01)?;
    let variant = FaultTolerantVariant::from_bounds(profile, &report)
        .expect("eps = 1% is inside the feasible region");
    let tech = Technology::bulk_90nm().with_leak_share(
        profile.leak_share,
        profile.size,
        profile.depth,
        profile.activity,
    )?;
    let base = BaselineCircuit {
        size: profile.size,
        depth: profile.depth,
    };
    println!("technology: {tech}\n");

    let nominal = at_nominal(&tech, base, profile.activity, &variant)?;
    println!("fault-tolerant variant at nominal Vdd : {nominal}");
    match iso_energy_vdd(&tech, base, profile.activity, &variant) {
        Ok(iso) => println!("iso-energy (hide the energy overhead)  : {iso}"),
        Err(e) => println!("iso-energy impossible: {e}"),
    }
    let iso_d = iso_delay_vdd(&tech, base, profile.activity, &variant)?;
    println!("iso-delay (hide the latency overhead) : {iso_d}");
    Ok(())
}
