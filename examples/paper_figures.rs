//! Regenerates every figure and claim of the paper and writes the data
//! to `results/` as CSV (plus the ASCII charts to stdout).
//!
//! Run: `cargo run --release --example paper_figures`
//!
//! This is the one-shot version of the per-figure bench targets in
//! `nanobound-bench`; see `EXPERIMENTS.md` for the paper-vs-measured
//! comparison of each output.

use std::fs;
use std::path::Path;

use nanobound::experiments::profiles::{profile_suite, ProfileConfig};
use nanobound::experiments::FigureOutput;
use nanobound::experiments::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, headline, validation};

fn save(dir: &Path, fig: &FigureOutput) -> std::io::Result<()> {
    println!("{}", fig.render());
    for (i, table) in fig.tables.iter().enumerate() {
        let suffix = if fig.tables.len() > 1 {
            format!("_{i}")
        } else {
            String::new()
        };
        let path = dir.join(format!("{}{suffix}.csv", fig.id));
        fs::write(&path, table.to_csv())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;

    // Closed-form figures.
    save(dir, &fig2::generate()?)?;
    save(dir, &fig3::generate()?)?;
    save(dir, &fig4::generate()?)?;
    save(dir, &fig5::generate()?)?;
    save(dir, &fig6::generate()?)?;

    // Benchmark-driven figures share one profiling pass.
    let profiles = profile_suite(&ProfileConfig::default())?;
    save(dir, &fig7::generate_from(&profiles)?)?;
    save(dir, &fig8::generate_from(&profiles)?)?;
    save(dir, &headline::generate_from(&profiles)?)?;

    // Monte-Carlo validation (slowest part).
    for fig in validation::generate()? {
        save(dir, &fig)?;
    }
    println!("\nall figures regenerated into {}", dir.display());
    Ok(())
}
