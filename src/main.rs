//! `nanobound` — command-line front end.
//!
//! ```console
//! nanobound profile <file.bench|file.blif> [--eps E]... [--delta D] [--frames T]
//! nanobound bounds --size S0 --sensitivity S --activity SW --fanin K [--inputs N] [--eps E] [--delta D]
//! nanobound figures [--out DIR]
//! ```
//!
//! `profile` parses a netlist (ISCAS `.bench` or BLIF), runs the
//! measurement pipeline and prints the bound report; sequential designs
//! are unrolled over `--frames` time frames first. `bounds` skips the
//! netlist and evaluates the closed-form bounds for hand-supplied
//! circuit parameters. `figures` regenerates every figure of the paper
//! into CSV files.
//!
//! Every subcommand accepts `--jobs N` (default: the host's available
//! parallelism). Work is sharded through `nanobound-runner`, whose
//! determinism contract guarantees the output is byte-identical for
//! every `N` — parallelism changes wall-clock time, never results.
//!
//! `profile` and `figures` additionally accept `--cache-dir DIR` to
//! reuse shard results (Monte-Carlo chunk tallies, sweep grid cells,
//! benchmark measurements) across runs, and `--no-cache` to veto a
//! configured cache. The cache is content-addressed and bit-exact:
//! warm-cache output is byte-identical to cold-cache and `--no-cache`
//! output, and corrupt entries silently recompute.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use nanobound::cache::ShardCache;
use nanobound::core::{BoundReport, CircuitProfile, DepthBound};
use nanobound::experiments::profiles::{
    profile_netlist_cached, profile_suite_cached, ProfileConfig,
};
use nanobound::io::{bench, blif, unroll, Design};
use nanobound::runner::{try_grid_map, ThreadPool, MAX_JOBS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("bounds") => cmd_bounds(&args[1..]),
        Some("figures") => cmd_figures(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
nanobound — energy bounds for fault-tolerant nanoscale designs
          (reproduction of Marculescu, DATE 2005)

USAGE:
    nanobound profile <FILE> [OPTIONS]   profile a .bench/.blif netlist and
                                         print its bound report
    nanobound bounds [OPTIONS]           evaluate the bounds for explicit
                                         circuit parameters
    nanobound figures [--out DIR]        regenerate every paper figure as CSV

COMMON OPTIONS:
    --jobs <N>       worker threads (1..=512)  [default: all hardware threads]
                     results are byte-identical for every N
    --cache-dir <D>  reuse shard results (Monte-Carlo chunks, sweep cells,
                     benchmark measurements) across runs via a
                     content-addressed cache at D; warm output is
                     byte-identical to cold   [default: caching off]
    --no-cache       ignore --cache-dir and recompute everything

PROFILE OPTIONS:
    --eps <E>        gate error probability (repeatable; default 0.001 0.01 0.1)
    --delta <D>      required output error bound        [default: 0.01]
    --frames <T>     unroll sequential designs T frames [default: 4]
    --patterns <N>   activity-simulation vectors        [default: 10000]
    --leak <L>       baseline leakage share             [default: 0.5]

BOUNDS OPTIONS:
    --size <S0>  --sensitivity <S>  --activity <SW>  --fanin <K>
    --inputs <N>     [default: max(sensitivity, 2)]
    --depth <D0>     [default: 8]
    --eps, --delta, --leak as above
";

/// Parsed `--name value` pairs, in order of appearance.
type Flags = Vec<(String, String)>;

/// Flags that take no value (stored with the placeholder value `"true"`).
const BOOLEAN_FLAGS: [&str; 1] = ["no-cache"];

/// Pulls `--name value` pairs (and valueless [`BOOLEAN_FLAGS`]) out of
/// an argument list; returns the positional arguments.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} expects a value"))?;
            flags.push((name.to_owned(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_values<'a>(flags: &'a [(String, String)], name: &str) -> Vec<&'a str> {
    flags
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .collect()
}

fn flag_f64(flags: &[(String, String)], name: &str, default: f64) -> Result<f64, String> {
    match flag_values(flags, name).last() {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: `{v}` is not a number")),
    }
}

fn flag_usize(flags: &[(String, String)], name: &str, default: usize) -> Result<usize, String> {
    match flag_values(flags, name).last() {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: `{v}` is not an integer")),
    }
}

/// Builds the worker pool from `--jobs` (default: hardware threads).
///
/// Absurd values are configuration errors, not panics: `--jobs 0` and
/// anything above [`MAX_JOBS`] are rejected with the runner's own
/// message naming the supported range.
fn pool_from_flags(flags: &[(String, String)]) -> Result<ThreadPool, String> {
    match flag_values(flags, "jobs").last() {
        None => Ok(ThreadPool::auto()),
        Some(v) => {
            let jobs: usize = v.parse().map_err(|_| {
                format!("--jobs: `{v}` is not an integer (supported: 1..={MAX_JOBS})")
            })?;
            ThreadPool::new(jobs).map_err(|e| format!("--jobs: {e}"))
        }
    }
}

/// Opens the shard cache requested by `--cache-dir`, unless `--no-cache`
/// vetoes it (useful when a wrapper script always passes a cache dir).
///
/// `None` means caching is off; results are identical either way — the
/// cache only trades recomputation for disk reads.
fn cache_from_flags(flags: &[(String, String)]) -> Result<Option<ShardCache>, String> {
    if !flag_values(flags, "no-cache").is_empty() {
        return Ok(None);
    }
    match flag_values(flags, "cache-dir").last() {
        None => Ok(None),
        Some(dir) => ShardCache::open(dir)
            .map(Some)
            .map_err(|e| format!("--cache-dir: cannot open `{dir}`: {e}")),
    }
}

/// Prints the cache traffic summary after a cached run.
fn print_cache_summary(cache: &ShardCache) {
    let stats = cache.stats();
    println!(
        "cache {}: {} hits, {} misses, {} entries written{}",
        cache.root().display(),
        stats.hits,
        stats.misses,
        stats.writes,
        if stats.write_errors > 0 {
            format!(
                ", {} write errors (cache degraded, results unaffected)",
                stats.write_errors
            )
        } else {
            String::new()
        },
    );
}

fn epsilons(flags: &[(String, String)]) -> Result<Vec<f64>, String> {
    let supplied = flag_values(flags, "eps");
    if supplied.is_empty() {
        return Ok(vec![0.001, 0.01, 0.1]);
    }
    supplied
        .iter()
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--eps: `{v}` is not a number"))
        })
        .collect()
}

fn load_design(path: &str) -> Result<Design, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("blif"))
    {
        blif::parse(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        bench::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err(format!(
            "`profile` expects exactly one netlist file\n\n{USAGE}"
        ));
    };
    let delta = flag_f64(&flags, "delta", 0.01)?;
    let frames = flag_usize(&flags, "frames", 4)?;
    let patterns = flag_usize(&flags, "patterns", 10_000)?;
    let leak = flag_f64(&flags, "leak", 0.5)?;
    let eps = epsilons(&flags)?;
    let pool = pool_from_flags(&flags)?;
    let cache = cache_from_flags(&flags)?;

    let design = load_design(path)?;
    let netlist = if design.is_sequential() {
        println!(
            "sequential design ({} latches): unrolling {frames} time frames",
            design.latches.len()
        );
        unroll::unroll_free(&design, frames).map_err(|e| e.to_string())?
    } else {
        design.netlist
    };
    let config = ProfileConfig {
        patterns,
        leak_share: leak,
        ..Default::default()
    };
    let profiled = profile_netlist_cached(&netlist, None, &config, cache.as_ref())
        .map_err(|e| e.to_string())?;
    println!("profile: {}", profiled.profile);
    print_reports(&pool, &profiled.profile, &eps, delta)?;
    if let Some(cache) = &cache {
        print_cache_summary(cache);
    }
    Ok(())
}

fn cmd_bounds(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!("`bounds` takes only flags\n\n{USAGE}"));
    }
    let size = flag_usize(&flags, "size", 0)?;
    let sensitivity = flag_f64(&flags, "sensitivity", 0.0)?;
    let activity = flag_f64(&flags, "activity", 0.0)?;
    let fanin = flag_f64(&flags, "fanin", 0.0)?;
    if size == 0 || sensitivity <= 0.0 || activity <= 0.0 || fanin < 2.0 {
        return Err(format!(
            "`bounds` needs --size, --sensitivity, --activity and --fanin\n\n{USAGE}"
        ));
    }
    let profile = CircuitProfile {
        name: "cli".into(),
        inputs: flag_usize(&flags, "inputs", sensitivity.ceil().max(2.0) as usize)?,
        outputs: 1,
        size,
        depth: flag_usize(&flags, "depth", 8)? as u32,
        sensitivity,
        activity,
        fanin,
        leak_share: flag_f64(&flags, "leak", 0.5)?,
    };
    let delta = flag_f64(&flags, "delta", 0.01)?;
    let eps = epsilons(&flags)?;
    let pool = pool_from_flags(&flags)?;
    println!("profile: {profile}");
    print_reports(&pool, &profile, &eps, delta)
}

/// Evaluates one bound report per ε across the pool (grid order is
/// preserved, so the printed output never depends on the worker count)
/// and prints them.
fn print_reports(
    pool: &ThreadPool,
    profile: &CircuitProfile,
    epsilons: &[f64],
    delta: f64,
) -> Result<(), String> {
    let reports = try_grid_map(pool, epsilons, |&eps| {
        BoundReport::evaluate(profile, eps, delta).map_err(|e| e.to_string())
    })?;
    for (&eps, r) in epsilons.iter().zip(&reports) {
        println!("\nbounds at eps = {eps}, delta = {delta}:");
        println!(
            "  size        >= {:.4}x  ({:.1} added gates)",
            r.size_factor, r.redundancy_gates
        );
        println!(
            "  energy      >= {:.4}x  (switching-only: {:.4}x)",
            r.total_energy_factor, r.switching_energy_factor
        );
        println!("  leakage/switching ratio: {:.4}x", r.leakage_ratio_factor);
        match r.depth_bound {
            DepthBound::Bounded(d) => println!("  depth       >= {d:.2} levels"),
            DepthBound::NoKnownBound => println!("  depth       : no known bound in this regime"),
            DepthBound::Infeasible { max_inputs } => println!(
                "  INFEASIBLE  : reliable computation impossible beyond {max_inputs:.1} inputs"
            ),
        }
        match (
            r.delay_factor,
            r.average_power_factor,
            r.energy_delay_factor,
        ) {
            (Some(d), Some(p), Some(e)) => {
                println!("  delay       >= {d:.4}x   power >= {p:.4}x   EDP >= {e:.4}x");
            }
            _ => println!("  delay/power/EDP: not defined (xi^2 <= 1/k)"),
        }
    }
    Ok(())
}

fn cmd_figures(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!("`figures` takes only flags\n\n{USAGE}"));
    }
    let dir = flag_values(&flags, "out")
        .last()
        .copied()
        .unwrap_or("results")
        .to_owned();
    let pool = pool_from_flags(&flags)?;
    let cache = cache_from_flags(&flags)?;
    let shards = cache.as_ref();
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;

    use nanobound::experiments::{fig2, fig3, fig4, fig5, fig6, fig7, fig8, headline};
    let mut figures = vec![
        fig2::generate_cached(&pool, shards),
        fig3::generate_cached(&pool, shards),
        fig4::generate_cached(&pool, shards),
        fig5::generate_cached(&pool, shards),
        fig6::generate_cached(&pool, shards),
    ];
    let profiles = profile_suite_cached(&pool, &ProfileConfig::default(), shards)
        .map_err(|e| e.to_string())?;
    figures.push(fig7::generate_from(&profiles));
    figures.push(fig8::generate_from(&profiles));
    figures.push(headline::generate_from(&profiles));
    for fig in figures {
        let fig = fig.map_err(|e| e.to_string())?;
        for (i, table) in fig.tables.iter().enumerate() {
            let suffix = if fig.tables.len() > 1 {
                format!("_{i}")
            } else {
                String::new()
            };
            let path = format!("{dir}/{}{suffix}.csv", fig.id);
            fs::write(&path, table.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    if let Some(cache) = &cache {
        print_cache_summary(cache);
    }
    Ok(())
}
