//! `nanobound` — command-line front end.
//!
//! ```console
//! nanobound profile <file.bench|file.blif> [--eps E]... [--delta D] [--frames T]
//! nanobound bounds --size S0 --sensitivity S --activity SW --fanin K [--inputs N] [--eps E] [--delta D]
//! nanobound figures [--out DIR | --stdout] [--only FIG]...
//! nanobound validate [--out DIR | --stdout]
//! nanobound lint [FILES]... [--suite] [--format text|json] [--deny warnings]
//! nanobound serve [--listen ADDR] [--idle-timeout S] [--gc-bytes N] [--gc-age-days D]
//! nanobound cluster <file.bench|file.blif> [--worker ADDR]... [--chaos-seed N]
//! ```
//!
//! The binary is a thin shell: every subcommand lives in
//! [`nanobound_service::cli`], which routes one-shot commands and the
//! long-running `serve` mode through the same
//! [`nanobound_service::Engine`] — that shared code path is what makes
//! service responses byte-identical to one-shot output.
//!
//! Every subcommand accepts `--jobs N` (default: the host's available
//! parallelism); results are byte-identical for every `N`. `profile`,
//! `figures`, `validate` and `serve` additionally accept
//! `--cache-dir DIR` to reuse shard results across runs via the
//! content-addressed cache, and `--no-cache` to run without one; warm
//! output is byte-identical to cold.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nanobound_service::cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
