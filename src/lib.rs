//! # nanobound
//!
//! A reproduction of *D. Marculescu, "Energy Bounds for Fault-Tolerant
//! Nanoscale Designs", DATE 2005* — lower bounds on the energy, size, depth,
//! average power and energy-delay cost of computing reliably with noisy
//! gates, together with the full substrate needed to apply those bounds to
//! real circuits.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`logic`] — netlist IR, statistics and synthesis-lite transforms;
//! - [`cache`] — content-addressed shard result cache (fingerprints,
//!   corruption-tolerant store; warm runs are byte-identical to cold);
//! - [`io`] — ISCAS `.bench` and BLIF readers/writers;
//! - [`gen`] — parameterized circuit generators (arithmetic, parity,
//!   control, ISCAS'85 functional analogs);
//! - [`sim`] — bit-parallel simulation, switching activity, noisy
//!   Monte-Carlo fault injection, sensitivity;
//! - [`core`] — the paper's theory: Theorems 1-4, Corollaries 1-2 and the
//!   composite delay/power/energy-delay bounds;
//! - [`energy`] — technology-parameterized energy/delay models and Vdd
//!   scaling;
//! - [`redundancy`] — constructive fault tolerance (NMR, von Neumann
//!   multiplexing);
//! - [`report`] — tables, CSV/Markdown emitters, ASCII charts;
//! - [`runner`] — deterministic parallel execution (work-stealing pool,
//!   sharded Monte-Carlo, parallel grid sweeps; `--jobs N` is
//!   byte-identical to `--jobs 1`);
//! - [`experiments`] — regeneration of every figure and headline claim of
//!   the paper;
//! - [`service`] — the long-running batch service: job engine over one
//!   pool + one shard cache, line-delimited request protocol, serve
//!   loop, and the CLI command layer shared with the one-shot binary.
//!
//! # Quickstart
//!
//! Bound the energy cost of making a 10-input parity circuit 99%-reliable
//! when every gate fails with probability 1% — measuring every
//! circuit-specific parameter from a real netlist:
//!
//! ```
//! use nanobound::core::BoundReport;
//! use nanobound::experiments::profiles::{profile_netlist, ProfileConfig};
//! use nanobound::gen::parity;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tree = parity::parity_tree(10, 3)?;
//! let profiled = profile_netlist(&tree, None, &ProfileConfig::default())?;
//! let bounds = BoundReport::evaluate(&profiled.profile, 0.01, 0.01)?;
//! assert!(bounds.total_energy_factor >= 1.0);
//! println!(
//!     "{}: at eps=1% reliability costs >= {:.1}% more energy",
//!     profiled.name,
//!     (bounds.total_energy_factor - 1.0) * 100.0,
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use nanobound_cache as cache;
pub use nanobound_core as core;
pub use nanobound_energy as energy;
pub use nanobound_experiments as experiments;
pub use nanobound_gen as gen;
pub use nanobound_io as io;
pub use nanobound_logic as logic;
pub use nanobound_redundancy as redundancy;
pub use nanobound_report as report;
pub use nanobound_runner as runner;
pub use nanobound_service as service;
pub use nanobound_sim as sim;
