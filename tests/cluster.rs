//! End-to-end tests of `nanobound cluster`: the distributed Monte-Carlo
//! run must produce stdout **byte-identical** to the serial (zero
//! worker) run under every failure the coordinator survives — dead
//! workers, seeded chaos on the wire — with every failure surfaced as a
//! counted retry or ejection on the pinned stats line, never as an
//! error or a lost shard.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nanobound"))
}

/// Spawns a `nanobound serve` worker on an ephemeral TCP port and
/// returns the child plus the address it announced.
fn spawn_worker() -> (Child, String) {
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "serve exited before announcing its address"
        );
        if let Some(rest) = line
            .trim_end()
            .strip_prefix("nanobound serve: listening on ")
        {
            break rest.to_owned();
        }
    };
    std::thread::spawn(move || std::io::copy(&mut stderr, &mut std::io::sink()));
    (child, addr)
}

/// An address that is guaranteed to refuse connections: bind an
/// ephemeral port, note it, and close the listener.
fn dead_address() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("bound address").to_string();
    drop(listener);
    addr
}

fn scratch_netlist(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("nanobound_cluster_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mix.bench");
    std::fs::write(
        &path,
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n\
         OUTPUT(x)\nOUTPUT(y)\n\
         n1 = AND(a, b)\n\
         n2 = OR(c, d)\n\
         n3 = XOR(n1, n2)\n\
         n4 = NOT(n2)\n\
         x = AND(n3, n4)\n\
         y = XOR(n1, n4)\n",
    )
    .unwrap();
    (dir, path.to_str().unwrap().to_owned())
}

const RUN_ARGS: [&str; 10] = [
    "--eps",
    "0.02",
    "--patterns",
    "4096",
    "--chunk",
    "256",
    "--batch",
    "2",
    "--jobs",
    "2",
];

/// Runs `nanobound cluster` and returns `(stdout, stats)`, where
/// `stats` is the pinned `cluster: ...` stats line from stderr.
fn run_cluster_cmd(netlist: &str, extra: &[&str]) -> (Vec<u8>, String) {
    let out = bin()
        .arg("cluster")
        .arg(netlist)
        .args(RUN_ARGS)
        .args(extra)
        .output()
        .expect("cluster runs");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "cluster {extra:?} failed: {stderr}");
    // The pinned stats line is `nanobound cluster: {n} shards, ...`;
    // worker diagnostics share the prefix but never lead with a digit.
    let stats = stderr
        .lines()
        .filter_map(|line| line.strip_prefix("nanobound cluster: "))
        .find(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
        .unwrap_or_else(|| panic!("no stats line in stderr: {stderr}"))
        .to_owned();
    (out.stdout, stats)
}

/// Pulls the aggregate `{n} retries` / `{n} ejections` counters off the
/// stats line (the segment before the first ` | worker`).
fn aggregate_counter(stats: &str, name: &str) -> u64 {
    let aggregate = stats.split(" | ").next().unwrap();
    aggregate
        .split(", ")
        .find_map(|field| field.strip_suffix(&format!(" {name}")))
        .unwrap_or_else(|| panic!("no `{name}` field in stats line: {stats}"))
        .parse()
        .unwrap_or_else(|_| panic!("unparsable `{name}` count: {stats}"))
}

#[test]
fn healthy_workers_match_the_serial_run_byte_for_byte() {
    let (dir, netlist) = scratch_netlist("healthy");
    let (serial_out, serial_stats) = run_cluster_cmd(&netlist, &[]);
    assert!(
        serial_out.starts_with(b"monte-carlo: 4096 patterns, 16 shards"),
        "unexpected result header: {}",
        String::from_utf8_lossy(&serial_out)
    );
    assert!(
        serial_stats.starts_with("16 shards, ") || serial_stats.contains("16 shards"),
        "serial stats miscounts shards: {serial_stats}"
    );

    let (mut w1, a1) = spawn_worker();
    let (mut w2, a2) = spawn_worker();
    let (distributed_out, stats) = run_cluster_cmd(&netlist, &["--worker", &a1, "--worker", &a2]);
    let _ = w1.kill();
    let _ = w2.kill();

    assert_eq!(
        distributed_out, serial_out,
        "2-worker stdout != serial stdout"
    );
    assert_eq!(aggregate_counter(&stats, "retries"), 0);
    assert_eq!(aggregate_counter(&stats, "ejections"), 0);
    assert!(
        stats.contains(&format!("worker {a1}:")) && stats.contains(&format!("worker {a2}:")),
        "stats line is missing a worker segment: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_dead_worker_is_ejected_and_the_run_still_matches_serial() {
    let (dir, netlist) = scratch_netlist("dead");
    let (serial_out, _) = run_cluster_cmd(&netlist, &[]);

    let (mut w1, a1) = spawn_worker();
    let dead = dead_address();
    let (out, stats) = run_cluster_cmd(
        &netlist,
        &[
            "--worker",
            &a1,
            "--worker",
            &dead,
            "--quarantine-after",
            "1",
            "--backoff-ms",
            "1",
            "--connect-timeout",
            "0.5",
        ],
    );
    let _ = w1.kill();

    assert_eq!(out, serial_out, "degraded stdout != serial stdout");
    assert!(
        aggregate_counter(&stats, "ejections") >= 1,
        "the dead worker was never ejected: {stats}"
    );
    assert!(
        aggregate_counter(&stats, "retries") >= 1,
        "the dead worker's failures were not counted: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_worker_dead_degrades_to_local_compute() {
    let (dir, netlist) = scratch_netlist("alldead");
    let (serial_out, _) = run_cluster_cmd(&netlist, &[]);
    let (out, stats) = run_cluster_cmd(
        &netlist,
        &[
            "--worker",
            &dead_address(),
            "--quarantine-after",
            "1",
            "--backoff-ms",
            "1",
            "--connect-timeout",
            "0.5",
        ],
    );
    assert_eq!(out, serial_out, "coordinator-only stdout != serial stdout");
    assert!(
        aggregate_counter(&stats, "ejections") >= 1,
        "the dead worker was never ejected: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_chaos_retries_but_never_changes_a_byte() {
    let (dir, netlist) = scratch_netlist("chaos");
    let (serial_out, _) = run_cluster_cmd(&netlist, &[]);

    let (mut w1, a1) = spawn_worker();
    let (mut w2, a2) = spawn_worker();
    // Seed 25 is the pinned ci seed: every worker's first chaos draw is
    // a fault, so at least one retry is guaranteed.
    let (out, stats) = run_cluster_cmd(
        &netlist,
        &[
            "--worker",
            &a1,
            "--worker",
            &a2,
            "--chaos-seed",
            "25",
            "--backoff-ms",
            "1",
        ],
    );
    let _ = w1.kill();
    let _ = w2.kill();

    assert_eq!(out, serial_out, "chaos stdout != serial stdout");
    assert!(
        aggregate_counter(&stats, "retries") >= 1,
        "seed 25 injected no counted fault: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn remote_results_land_in_the_local_cache() {
    let (dir, netlist) = scratch_netlist("cachefeed");
    let cache = dir.join("cache").to_str().unwrap().to_owned();

    let (mut w1, a1) = spawn_worker();
    let (first_out, first_stats) =
        run_cluster_cmd(&netlist, &["--worker", &a1, "--cache-dir", &cache]);
    let _ = w1.kill();

    // A serial re-run over the same cache must be fully warm: every
    // shard a hit, zero computed anywhere, same bytes out.
    let (second_out, second_stats) = run_cluster_cmd(&netlist, &["--cache-dir", &cache]);
    assert_eq!(second_out, first_out, "warm stdout != distributed stdout");
    assert_eq!(
        aggregate_counter(&first_stats, "cached"),
        0,
        "first run unexpectedly warm: {first_stats}"
    );
    assert_eq!(
        aggregate_counter(&second_stats, "cached"),
        16,
        "remote tallies were not stored locally: {second_stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
