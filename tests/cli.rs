//! End-to-end tests of the `nanobound` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nanobound"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    assert!(err.contains("USAGE"));
    assert!(err.contains("profile"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn bounds_evaluates_explicit_parameters() {
    let (ok, out, err) = run(&[
        "bounds",
        "--size",
        "21",
        "--sensitivity",
        "10",
        "--activity",
        "0.5",
        "--fanin",
        "3",
        "--eps",
        "0.01",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("size        >= 1.10"), "out: {out}");
    assert!(out.contains("delay"));
}

#[test]
fn bounds_requires_mandatory_flags() {
    let (ok, _, err) = run(&["bounds", "--size", "10"]);
    assert!(!ok);
    assert!(err.contains("needs --size, --sensitivity"));
}

#[test]
fn profile_handles_combinational_bench_file() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xor2.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    let (ok, out, err) = run(&["profile", path.to_str().unwrap(), "--eps", "0.05"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("profile:"), "out: {out}");
    assert!(out.contains("eps = 0.05"));
}

#[test]
fn profile_unrolls_sequential_designs() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toggle.bench");
    std::fs::write(
        &path,
        "INPUT(en)\nOUTPUT(count)\nq = DFF(next)\nnext = XOR(q, en)\ncount = BUFF(q)\n",
    )
    .unwrap();
    let (ok, out, err) = run(&[
        "profile",
        path.to_str().unwrap(),
        "--frames",
        "3",
        "--eps",
        "0.01",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("unrolling 3 time frames"), "out: {out}");
}

#[test]
fn profile_reports_parse_errors() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.bench");
    std::fs::write(&path, "OUTPUT(y)\ny = FROB(a)\n").unwrap();
    let (ok, _, err) = run(&["profile", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("error"), "stderr: {err}");
}

#[test]
fn figures_writes_csv_files() {
    let dir = std::env::temp_dir().join("nanobound_cli_test_figures");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, out, err) = run(&["figures", "--out", dir.to_str().unwrap()]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("wrote "), "out: {out}");
    let csvs = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "csv")
        })
        .count();
    assert!(csvs >= 8, "expected every figure as CSV, found {csvs}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_flag_value_is_an_error() {
    let (ok, _, err) = run(&["bounds", "--size"]);
    assert!(!ok);
    assert!(err.contains("expects a value"));
}
