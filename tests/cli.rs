//! End-to-end tests of the `nanobound` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    run_with_env(args, &[])
}

fn run_with_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_nanobound"));
    command.args(args);
    // Tests must not inherit an ambient engine override (a developer
    // legitimately exporting the escape hatch would otherwise flip the
    // expected outputs); every test states its engine explicitly.
    command.env_remove("NANOBOUND_ENGINE");
    for (key, value) in env {
        command.env(key, value);
    }
    let out = command.output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    assert!(err.contains("USAGE"));
    assert!(err.contains("profile"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn bounds_evaluates_explicit_parameters() {
    let (ok, out, err) = run(&[
        "bounds",
        "--size",
        "21",
        "--sensitivity",
        "10",
        "--activity",
        "0.5",
        "--fanin",
        "3",
        "--eps",
        "0.01",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("size        >= 1.10"), "out: {out}");
    assert!(out.contains("delay"));
}

#[test]
fn bounds_requires_mandatory_flags() {
    let (ok, _, err) = run(&["bounds", "--size", "10"]);
    assert!(!ok);
    assert!(err.contains("needs --size, --sensitivity"));
}

#[test]
fn profile_handles_combinational_bench_file() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xor2.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    let (ok, out, err) = run(&["profile", path.to_str().unwrap(), "--eps", "0.05"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("profile:"), "out: {out}");
    assert!(out.contains("eps = 0.05"));
}

#[test]
fn profile_unrolls_sequential_designs() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toggle.bench");
    std::fs::write(
        &path,
        "INPUT(en)\nOUTPUT(count)\nq = DFF(next)\nnext = XOR(q, en)\ncount = BUFF(q)\n",
    )
    .unwrap();
    let (ok, out, err) = run(&[
        "profile",
        path.to_str().unwrap(),
        "--frames",
        "3",
        "--eps",
        "0.01",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("unrolling 3 time frames"), "out: {out}");
}

#[test]
fn profile_reports_parse_errors() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.bench");
    std::fs::write(&path, "OUTPUT(y)\ny = FROB(a)\n").unwrap();
    let (ok, _, err) = run(&["profile", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("error"), "stderr: {err}");
}

#[test]
fn figures_writes_csv_files() {
    // `--jobs 2` exercises the flag on the figures path; byte-identity
    // across worker counts is pinned by tests/figures_golden.rs, which
    // compares --jobs 1 and --jobs 5 runs against the committed goldens.
    let dir = std::env::temp_dir().join("nanobound_cli_test_figures");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, out, err) = run(&["figures", "--out", dir.to_str().unwrap(), "--jobs", "2"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("wrote "), "out: {out}");
    let csvs = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "csv")
        })
        .count();
    assert!(csvs >= 8, "expected every figure as CSV, found {csvs}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reads every CSV in a directory as name → bytes.
fn read_csvs(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.path().extension().is_some_and(|x| x == "csv"))
        .map(|e| {
            (
                e.file_name().into_string().unwrap(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn warm_cache_figures_are_byte_identical_to_cold_and_uncached() {
    let base = std::env::temp_dir().join("nanobound_cli_cache");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let dir = |name: &str| base.join(name).to_str().unwrap().to_owned();
    let cache = dir("cache");

    let (ok, cold_out, err) = run(&["figures", "--out", &dir("cold"), "--cache-dir", &cache]);
    assert!(ok, "cold run failed: {err}");
    assert!(
        cold_out.contains("cache ") && cold_out.contains(" misses"),
        "missing cache summary: {cold_out}"
    );

    let (ok, warm_out, err) = run(&["figures", "--out", &dir("warm"), "--cache-dir", &cache]);
    assert!(ok, "warm run failed: {err}");
    assert!(
        warm_out.contains("0 misses"),
        "warm run missed entries: {warm_out}"
    );

    let (ok, plain_out, err) = run(&["figures", "--out", &dir("plain"), "--no-cache"]);
    assert!(ok, "--no-cache run failed: {err}");
    assert!(
        !plain_out.contains("cache "),
        "--no-cache still printed a cache summary: {plain_out}"
    );

    let cold = read_csvs(&base.join("cold"));
    assert!(cold.len() >= 8, "figure set incomplete: {}", cold.len());
    assert_eq!(cold, read_csvs(&base.join("warm")), "warm != cold");
    assert_eq!(cold, read_csvs(&base.join("plain")), "--no-cache != cold");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn profile_accepts_cache_flags_and_reports_traffic() {
    let base = std::env::temp_dir().join("nanobound_cli_profile_cache");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let path = base.join("xor2.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    let cache = base.join("cache").to_str().unwrap().to_owned();
    let args = [
        "profile",
        path.to_str().unwrap(),
        "--eps",
        "0.05",
        "--cache-dir",
        &cache,
    ];
    let (ok, cold, err) = run(&args);
    assert!(ok, "stderr: {err}");
    assert!(
        cold.contains("0 activity reused (1 measured), 0 sensitivity reused (1 measured)"),
        "out: {cold}"
    );
    let (ok, warm, err) = run(&args);
    assert!(ok, "stderr: {err}");
    assert!(
        warm.contains("1 activity reused (0 measured), 1 sensitivity reused (0 measured)"),
        "out: {warm}"
    );
    // The report itself is identical; only the cache summary differs.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("cache "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&cold), strip(&warm));
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn unopenable_cache_dir_is_a_clean_error() {
    let base = std::env::temp_dir().join("nanobound_cli_cache_bad");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let file = base.join("not_a_dir");
    std::fs::write(&file, b"occupied").unwrap();
    let (ok, _, err) = run(&[
        "figures",
        "--out",
        base.join("out").to_str().unwrap(),
        "--cache-dir",
        file.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(err.contains("--cache-dir"), "stderr: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn usage_documents_the_cache_flags() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    assert!(
        err.contains("--cache-dir"),
        "usage missing --cache-dir: {err}"
    );
    assert!(
        err.contains("--no-cache"),
        "usage missing --no-cache: {err}"
    );
}

#[test]
fn missing_flag_value_is_an_error() {
    let (ok, _, err) = run(&["bounds", "--size"]);
    assert!(!ok);
    assert!(
        err.contains("--size") && err.contains("expects a value"),
        "stderr: {err}"
    );
}

#[test]
fn unknown_flags_are_rejected_by_name_on_every_subcommand() {
    // A typo must never be silently ignored — it would change which
    // experiment ran without any signal.
    for subcommand in [
        &["profile", "x.bench", "--epz", "0.1"][..],
        &["bounds", "--size", "21", "--frob", "3"][..],
        &["figures", "--bogus", "x"][..],
        &["validate", "--bogus", "x"][..],
        &["serve", "--bogus", "x"][..],
    ] {
        let (ok, _, err) = run(subcommand);
        assert!(!ok, "{subcommand:?} unexpectedly succeeded");
        assert!(
            err.contains("unknown flag `--"),
            "{subcommand:?}: stderr {err}"
        );
        assert!(
            err.contains("--epz") || err.contains("--frob") || err.contains("--bogus"),
            "{subcommand:?}: error does not name the token: {err}"
        );
        assert!(!err.contains("panicked"), "{subcommand:?}: stderr {err}");
    }
}

#[test]
fn cache_dir_with_no_cache_is_a_conflict_error() {
    let (ok, _, err) = run(&["figures", "--cache-dir", "/tmp/x", "--no-cache"]);
    assert!(!ok);
    assert!(
        err.contains("--no-cache") && err.contains("--cache-dir"),
        "error does not name both tokens: {err}"
    );
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn figures_only_selects_a_subset_and_rejects_unknown_names() {
    let dir = std::env::temp_dir().join("nanobound_cli_figures_only");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, out, err) = run(&[
        "figures",
        "--only",
        "fig2",
        "--only",
        "fig4",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(
        out.contains("fig2.csv") && out.contains("fig4.csv"),
        "out: {out}"
    );
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(names.len(), 2, "unexpected artifacts: {names:?}");
    let (ok, _, err) = run(&["figures", "--only", "fig9"]);
    assert!(!ok);
    assert!(err.contains("fig9"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn figures_stdout_prints_the_csv_and_conflicts_with_out() {
    let (ok, out, err) = run(&["figures", "--only", "fig2", "--stdout"]);
    assert!(ok, "stderr: {err}");
    assert!(out.starts_with("sw(y),"), "not CSV: {out}");
    let (ok, _, err) = run(&["figures", "--stdout", "--out", "somewhere"]);
    assert!(!ok);
    assert!(
        err.contains("--stdout") && err.contains("--out"),
        "stderr: {err}"
    );
}

#[test]
fn validate_writes_both_validation_tables() {
    let dir = std::env::temp_dir().join("nanobound_cli_validate");
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, out, err) = run(&["validate", "--out", dir.to_str().unwrap(), "--jobs", "2"]);
    assert!(ok, "stderr: {err}");
    assert!(
        out.contains("v1.csv") && out.contains("v2.csv"),
        "out: {out}"
    );
    let v1 = std::fs::read_to_string(dir.join("v1.csv")).unwrap();
    assert!(v1.starts_with("circuit,"), "v1: {v1}");
    let v2 = std::fs::read_to_string(dir.join("v2.csv")).unwrap();
    assert!(v2.starts_with("scheme,"), "v2: {v2}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn absurd_gc_age_values_are_clean_errors_not_panics() {
    for bad in ["nan", "inf", "-3", "1e300", "many"] {
        let (ok, _, err) = run(&["serve", "--cache-dir", "/tmp/x", "--gc-age-days", bad]);
        assert!(!ok, "--gc-age-days {bad} unexpectedly succeeded");
        assert!(
            err.contains("--gc-age-days"),
            "--gc-age-days {bad}: stderr {err}"
        );
        assert!(
            !err.contains("panicked"),
            "--gc-age-days {bad}: stderr {err}"
        );
    }
}

#[test]
fn usage_documents_the_new_subcommands() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    for needle in ["validate", "serve", "--only", "--stdout", "--listen"] {
        assert!(err.contains(needle), "usage missing {needle}: {err}");
    }
}

const BOUNDS_ARGS: &[&str] = &[
    "bounds",
    "--size",
    "21",
    "--sensitivity",
    "10",
    "--activity",
    "0.5",
    "--fanin",
    "3",
];

#[test]
fn jobs_zero_is_a_clean_error_not_a_panic() {
    let (ok, _, err) = run(&[BOUNDS_ARGS, &["--jobs", "0"]].concat());
    assert!(!ok);
    assert!(
        err.contains("--jobs") && err.contains("must lie in 1..="),
        "stderr: {err}"
    );
    assert!(!err.contains("panicked"), "stderr: {err}");
}

#[test]
fn absurd_jobs_values_are_rejected() {
    for bad in ["1000000", "-3", "2.5", "many"] {
        let (ok, _, err) = run(&[BOUNDS_ARGS, &["--jobs", bad]].concat());
        assert!(!ok, "--jobs {bad} unexpectedly succeeded");
        assert!(err.contains("--jobs"), "--jobs {bad}: stderr {err}");
        assert!(!err.contains("panicked"), "--jobs {bad}: stderr {err}");
    }
}

#[test]
fn bounds_output_is_identical_across_jobs() {
    let args = [
        BOUNDS_ARGS,
        &["--eps", "0.001", "--eps", "0.01", "--eps", "0.1"],
    ]
    .concat();
    let (ok1, out1, err1) = run(&[&args[..], &["--jobs", "1"]].concat());
    let (ok4, out4, _) = run(&[&args[..], &["--jobs", "4"]].concat());
    assert!(ok1 && ok4, "stderr: {err1}");
    assert_eq!(out1, out4, "--jobs changed the bounds output");
}

#[test]
fn profile_accepts_jobs_flag() {
    let dir = std::env::temp_dir().join("nanobound_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xor2_jobs.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    let (ok, out, err) = run(&[
        "profile",
        path.to_str().unwrap(),
        "--eps",
        "0.05",
        "--jobs",
        "2",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("eps = 0.05"), "out: {out}");
}

#[test]
fn usage_documents_the_jobs_flag() {
    let (ok, _, err) = run(&["--help"]);
    assert!(ok);
    assert!(err.contains("--jobs"), "usage missing --jobs: {err}");
    // The usage text hardcodes the range; keep it tied to the runner's
    // actual ceiling so the two cannot silently diverge.
    let range = format!("1..={}", nanobound::runner::MAX_JOBS);
    assert!(err.contains(&range), "usage range stale: {err}");
}

/// Path of a committed test fixture.
fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lint_reports_the_dirty_fixture_and_still_exits_zero_without_deny() {
    let (ok, out, err) = run(&["lint", &fixture("lint_dirty.bench")]);
    assert!(ok, "warnings alone must not fail without --deny: {err}");
    for code in [
        "NB004", "NB005", "NB006", "NB007", "NB009", "NB010", "NB021",
    ] {
        assert!(out.contains(code), "missing {code}: {out}");
    }
    assert!(!out.contains("NB020"), "tape falsely rejected: {out}");
    // Spans point back into the fixture source.
    assert!(out.contains("`unused`"), "out: {out}");
    assert!(out.contains("(line 13)"), "NB004 line span missing: {out}");
    assert!(out.contains("lint: 1 design(s), 0 error(s),"), "out: {out}");
}

#[test]
fn lint_deny_warnings_fails_but_still_prints_the_report() {
    let (ok, out, err) = run(&["lint", &fixture("lint_dirty.bench"), "--deny", "warnings"]);
    assert!(!ok);
    assert!(out.contains("NB006"), "report missing from stdout: {out}");
    assert!(
        err.contains("--deny warnings") || err.contains("warning(s)"),
        "stderr: {err}"
    );
    // A clean run passes under the same gate.
    let (ok, _, err) = run(&["lint", "--suite", "--deny", "warnings"]);
    assert!(ok, "generated suite is not lint-clean: {err}");
}

#[test]
fn lint_flags_no_outputs() {
    let (ok, out, _) = run(&["lint", &fixture("lint_no_outputs.bench")]);
    assert!(ok);
    assert!(out.contains("NB003"), "out: {out}");
}

#[test]
fn lint_json_is_machine_readable_and_deterministic() {
    let args = ["lint", &fixture("lint_dirty.bench"), "--format", "json"];
    let (ok, first, err) = run(&args);
    assert!(ok, "stderr: {err}");
    assert!(
        first.starts_with("{\"design\":\"lint_dirty\""),
        "out: {first}"
    );
    assert!(first.contains("\"warnings\":"), "out: {first}");
    assert!(first.contains("\"code\":\"NB006\""), "out: {first}");
    let (_, second, _) = run(&args);
    assert_eq!(first, second, "lint --format json is not deterministic");
}

#[test]
fn lint_corrupt_tape_fixture_is_rejected() {
    // The CI gate's negative control: an injected single-point tape
    // corruption must surface as NB020 and a nonzero exit.
    let (ok, out, _) = run(&["lint", &fixture("lint_dirty.bench"), "--corrupt-tape", "3"]);
    assert!(!ok, "corrupted tape passed the analyzer: {out}");
    assert!(out.contains("NB020"), "out: {out}");
    assert!(out.contains("injected corruption"), "out: {out}");
}

#[test]
fn lint_input_errors_are_clean_failures() {
    let (ok, _, err) = run(&["lint"]);
    assert!(!ok);
    assert!(err.contains("--suite"), "stderr: {err}");
    let (ok, _, err) = run(&["lint", "/nope/missing.bench"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "stderr: {err}");
    let (ok, _, err) = run(&["lint", "x.bench", "--format", "xml"]);
    assert!(!ok);
    assert!(err.contains("--format"), "stderr: {err}");
}

#[test]
fn duplicate_single_occurrence_flags_are_rejected_by_name() {
    // Last-one-wins would silently change which experiment ran; the
    // parser must name the repeated token instead.
    let (ok, _, err) = run(&["lint", "x.bench", "--format", "text", "--format", "json"]);
    assert!(!ok);
    assert!(err.contains("duplicate flag `--format`"), "stderr: {err}");
    let (ok, _, err) = run(&[BOUNDS_ARGS, &["--delta", "0.1", "--delta", "0.2"]].concat());
    assert!(!ok);
    assert!(err.contains("duplicate flag `--delta`"), "stderr: {err}");
    // Genuinely repeatable flags still accumulate.
    let (ok, _, err) = run(&[BOUNDS_ARGS, &["--eps", "0.01", "--eps", "0.1"]].concat());
    assert!(ok, "repeatable --eps rejected: {err}");
}

#[test]
fn engine_escape_hatch_is_byte_identical_and_strict() {
    // The interpreted oracle must reproduce the default compiled
    // engine's output byte for byte (ci.sh diffs the full figure and
    // validation sets; this pins a fast subset in-tree).
    let (ok, compiled, err) = run(&["figures", "--only", "fig3", "--stdout"]);
    assert!(ok, "stderr: {err}");
    let (ok, interp, err) = run_with_env(
        &["figures", "--only", "fig3", "--stdout"],
        &[("NANOBOUND_ENGINE", "interp")],
    );
    assert!(ok, "stderr: {err}");
    assert_eq!(compiled, interp);
    // An explicit `compiled` is accepted too.
    let (ok, explicit, _) = run_with_env(
        &["figures", "--only", "fig3", "--stdout"],
        &[("NANOBOUND_ENGINE", "compiled")],
    );
    assert!(ok);
    assert_eq!(compiled, explicit);
}

#[test]
fn unknown_engine_value_is_a_hard_error() {
    // Strict parsing, like every flag since PR 4: a typo must not
    // silently fall back to either engine.
    let (ok, _, err) = run_with_env(&["validate", "--stdout"], &[("NANOBOUND_ENGINE", "turbo")]);
    assert!(!ok);
    assert!(
        err.contains("NANOBOUND_ENGINE") && err.contains("turbo"),
        "unhelpful error: {err}"
    );
    assert!(
        err.contains("compiled") && err.contains("interp"),
        "error must name the valid values: {err}"
    );
}
