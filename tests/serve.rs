//! End-to-end tests of `nanobound serve`: the service's responses must
//! be **byte-identical** to the stdout of the equivalent one-shot CLI
//! invocations — across request order, repetition, cold/warm cache and
//! worker count — and the stdio and TCP transports must speak the same
//! protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nanobound::service::proto::read_response;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nanobound"))
}

/// Spawns `nanobound serve --listen 127.0.0.1:0 <extra>` and waits for
/// the bound address it announces on stderr.
fn spawn_tcp_serve(extra: &[&str]) -> (Child, String) {
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "serve exited before announcing its address"
        );
        if let Some(rest) = line
            .trim_end()
            .strip_prefix("nanobound serve: listening on ")
        {
            break rest.to_owned();
        }
    };
    // Keep draining stderr until the child exits: dropping the pipe
    // would make the service's own diagnostics fail to write.
    std::thread::spawn(move || std::io::copy(&mut stderr, &mut std::io::sink()));
    (child, addr)
}

/// Waits for `child` to exit cleanly, killing it (and failing) if it
/// is still running after 60 seconds.
fn assert_exits_cleanly(child: &mut Child, context: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("child pollable") {
            assert!(status.success(), "{context}: serve exited nonzero");
            return;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("{context}: serve kept running");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs a one-shot CLI invocation that must succeed; returns stdout.
fn one_shot(args: &[&str]) -> Vec<u8> {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "one-shot {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Runs a one-shot CLI invocation that must fail; returns stderr.
fn one_shot_failure(args: &[&str]) -> Vec<u8> {
    let out = bin().args(args).output().expect("binary runs");
    assert!(!out.status.success(), "one-shot {args:?} unexpectedly ok");
    out.stderr
}

/// Pipes a scripted session into `nanobound serve <extra>` and returns
/// the parsed responses plus the raw stdout stream.
#[allow(clippy::type_complexity)]
fn serve_session(extra: &[&str], script: &str) -> (Vec<(String, bool, Vec<u8>)>, Vec<u8>) {
    let mut child = bin()
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve exited nonzero");
    let mut reader = BufReader::new(out.stdout.as_slice());
    let mut responses = Vec::new();
    while let Some(response) = read_response(&mut reader).expect("well-framed response stream") {
        responses.push(response);
    }
    (responses, out.stdout)
}

/// A scratch dir holding a small netlist for `profile` requests.
fn scratch_netlist(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("nanobound_serve_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xor2.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    (dir, path.to_str().unwrap().to_owned())
}

const BOUND_ARGS: [&str; 10] = [
    "--size",
    "21",
    "--sensitivity",
    "10",
    "--activity",
    "0.5",
    "--fanin",
    "3",
    "--eps",
    "0.01",
];

fn json_args(args: &[&str]) -> String {
    let quoted: Vec<String> = args.iter().map(|a| format!("\"{a}\"")).collect();
    quoted.join(",")
}

#[test]
fn serve_responses_equal_one_shot_cli_output_byte_for_byte() {
    let (dir, netlist) = scratch_netlist("equiv");
    let profile_args = [netlist.as_str(), "--eps", "0.05", "--patterns", "2000"];
    let script = format!(
        "{{\"id\":\"b\",\"workload\":\"bound\",\"args\":[{}]}}\n\
         {{\"id\":\"f\",\"workload\":\"figure\",\"args\":[\"fig2\"]}}\n\
         {{\"id\":\"p\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"p2\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"bad\",\"workload\":\"profile\",\"args\":[\"/nope/missing.bench\"]}}\n",
        json_args(&BOUND_ARGS),
        json_args(&profile_args),
        json_args(&profile_args),
    );
    let (responses, _) = serve_session(&[], &script);
    assert_eq!(responses.len(), 5);

    let bounds_expected = one_shot(&[&["bounds"][..], &BOUND_ARGS[..]].concat());
    let figure_expected = one_shot(&["figures", "--only", "fig2", "--stdout"]);
    let profile_expected = one_shot(&[&["profile"][..], &profile_args[..]].concat());
    let failure_expected = one_shot_failure(&["profile", "/nope/missing.bench"]);

    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("b", true));
    assert_eq!(
        payload, &bounds_expected,
        "bound payload != `nanobound bounds` stdout"
    );
    let (id, ok, payload) = &responses[1];
    assert_eq!((id.as_str(), *ok), ("f", true));
    assert_eq!(
        payload, &figure_expected,
        "figure payload != `figures --only fig2 --stdout` stdout"
    );
    for index in [2, 3] {
        let (id, ok, payload) = &responses[index];
        assert!(id.starts_with('p'));
        assert!(*ok);
        assert_eq!(
            payload, &profile_expected,
            "profile payload (request {index}) != one-shot stdout"
        );
    }
    let (id, ok, payload) = &responses[4];
    assert_eq!((id.as_str(), *ok), ("bad", false));
    assert_eq!(
        payload, &failure_expected,
        "error payload != one-shot stderr"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_warm_cache_and_worker_count_leave_the_stream_identical() {
    let (dir, netlist) = scratch_netlist("warm");
    let cache = dir.join("cache").to_str().unwrap().to_owned();
    // Mixed-order script touching every deterministic workload,
    // including a replay of an earlier request.
    let script = format!(
        "{{\"id\":\"1\",\"workload\":\"figure\",\"args\":[\"fig4\"]}}\n\
         {{\"id\":\"2\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"3\",\"workload\":\"bound\",\"args\":[{}]}}\n\
         {{\"id\":\"4\",\"workload\":\"figure\",\"args\":[\"fig2\"]}}\n\
         {{\"id\":\"5\",\"workload\":\"figure\",\"args\":[\"fig4\"]}}\n",
        json_args(&[netlist.as_str(), "--eps", "0.01", "--patterns", "2000"]),
        json_args(&BOUND_ARGS),
    );
    let (_, cold_stream) = serve_session(&["--cache-dir", &cache, "--jobs", "1"], &script);
    let (_, warm_stream) = serve_session(&["--cache-dir", &cache, "--jobs", "5"], &script);
    let (_, plain_stream) = serve_session(&["--jobs", "3"], &script);
    assert_eq!(
        cold_stream, warm_stream,
        "warm-cache --jobs 5 stream != cold-cache --jobs 1 stream"
    );
    assert_eq!(
        cold_stream, plain_stream,
        "uncached stream != cached stream"
    );

    // The warm run above must actually have been served from the
    // cache: a fresh session over the same store reports zero misses
    // for a replayed figure.
    let stats_script = "{\"id\":\"f\",\"workload\":\"figure\",\"args\":[\"fig4\"]}\n\
                        {\"id\":\"s\",\"workload\":\"stats\"}\n";
    let (responses, _) = serve_session(&["--cache-dir", &cache], stats_script);
    let stats = String::from_utf8(responses[1].2.clone()).unwrap();
    assert!(
        stats.contains(" 0 misses"),
        "warm figure request missed the cache: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn validate_over_serve_matches_the_one_shot_cli() {
    let script = "{\"id\":\"v\",\"workload\":\"validate\"}\n";
    let (responses, _) = serve_session(&[], script);
    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("v", true));
    let expected = one_shot(&["validate", "--stdout"]);
    assert_eq!(
        payload, &expected,
        "validate payload != `validate --stdout`"
    );
}

#[test]
fn tcp_transport_speaks_the_same_protocol() {
    let (mut child, addr) = spawn_tcp_serve(&[]);
    let stream = TcpStream::connect(&addr).expect("connect to serve");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(
            b"{\"id\":\"t1\",\"workload\":\"ping\"}\n\
              {\"id\":\"t2\",\"workload\":\"figure\",\"args\":[\"fig2\"]}\n\
              {\"id\":\"t3\",\"workload\":\"shutdown\"}\n",
        )
        .expect("requests written");
    let mut reader = BufReader::new(stream);
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("ping response");
    assert_eq!(
        (id.as_str(), ok, &payload[..]),
        ("t1", true, &b"pong\n"[..])
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("figure response");
    assert_eq!((id.as_str(), ok), ("t2", true));
    assert_eq!(
        payload,
        one_shot(&["figures", "--only", "fig2", "--stdout"]),
        "TCP figure payload != one-shot stdout"
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("shutdown response");
    assert_eq!((id.as_str(), ok, &payload[..]), ("t3", true, &b"bye\n"[..]));
    // Shutdown ends the whole service.
    let status = child.wait().expect("serve exits after shutdown");
    assert!(status.success());
}

#[test]
fn serve_lint_payloads_equal_one_shot_stdout_byte_for_byte() {
    let dirty = format!(
        "{}/tests/fixtures/lint_dirty.bench",
        env!("CARGO_MANIFEST_DIR")
    );
    let script = format!(
        "{{\"id\":\"clean\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"dirty\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"json\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"bad\",\"workload\":\"lint\",\"args\":[\"/nope/missing.bench\"]}}\n",
        json_args(&["--suite", "--deny", "warnings"]),
        json_args(&[dirty.as_str(), "--deny", "warnings"]),
        json_args(&[dirty.as_str(), "--format", "json"]),
    );
    let (responses, _) = serve_session(&[], &script);
    assert_eq!(responses.len(), 4);

    let clean_expected = one_shot(&["lint", "--suite", "--deny", "warnings"]);
    // The denied run exits nonzero one-shot but still prints the full
    // report; the serve frame carries the same bytes with ok=false.
    let denied = bin()
        .args(["lint", dirty.as_str(), "--deny", "warnings"])
        .output()
        .expect("binary runs");
    assert!(!denied.status.success());
    let json_expected = one_shot(&["lint", dirty.as_str(), "--format", "json"]);
    let failure_expected = one_shot_failure(&["lint", "/nope/missing.bench"]);

    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("clean", true));
    assert_eq!(
        payload, &clean_expected,
        "serve lint payload != one-shot stdout"
    );

    let (id, ok, payload) = &responses[1];
    assert_eq!(
        (id.as_str(), *ok),
        ("dirty", false),
        "denied warnings must flip the ok flag"
    );
    assert_eq!(
        payload, &denied.stdout,
        "denied lint payload != one-shot stdout"
    );

    let (id, ok, payload) = &responses[2];
    assert_eq!((id.as_str(), *ok), ("json", true));
    assert_eq!(payload, &json_expected, "json lint payload != one-shot");

    let (id, ok, payload) = &responses[3];
    assert_eq!((id.as_str(), *ok), ("bad", false));
    assert_eq!(
        payload, &failure_expected,
        "lint failure payload != one-shot stderr"
    );
}

#[test]
fn concurrent_session_with_mid_flight_gc_matches_the_serial_stream() {
    // The tentpole contract: a session dispatched across 4 workers —
    // with a gc sweeping the cache mid-flight and per-request worker
    // overrides in the mix — produces the byte-identical response
    // stream of a serial cold session. Separate fresh cache dirs keep
    // the two runs independent.
    let (dir, netlist) = scratch_netlist("concurrent");
    let serial_cache = dir.join("serial").to_str().unwrap().to_owned();
    let concurrent_cache = dir.join("concurrent").to_str().unwrap().to_owned();
    let profile_args = [netlist.as_str(), "--eps", "0.05", "--patterns", "2000"];
    let script = format!(
        "{{\"id\":\"1\",\"workload\":\"bound\",\"args\":[{}]}}\n\
         {{\"id\":\"2\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"3\",\"workload\":\"figure\",\"args\":[\"fig2\"]}}\n\
         {{\"id\":\"4\",\"workload\":\"gc\",\"args\":[\"--bytes\",\"0\"]}}\n\
         this line is hostile\n\
         {{\"id\":\"5\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"6\",\"workload\":\"figure\",\"args\":[\"fig4\",\"--request-jobs\",\"2\"]}}\n\
         {{\"id\":\"7\",\"workload\":\"bound\",\"args\":[\"--request-jobs\",\"3\",{}]}}\n",
        json_args(&BOUND_ARGS),
        json_args(&profile_args),
        json_args(&profile_args),
        json_args(&BOUND_ARGS),
    );
    let (_, serial_stream) = serve_session(&["--cache-dir", &serial_cache, "--jobs", "1"], &script);
    let (responses, concurrent_stream) = serve_session(
        &[
            "--cache-dir",
            &concurrent_cache,
            "--jobs",
            "1",
            "--concurrency",
            "4",
            "--queue",
            "64",
        ],
        &script,
    );
    assert_eq!(
        concurrent_stream, serial_stream,
        "--concurrency 4 stream != serial stream"
    );
    // And the gc ran against a live cache, in order, with its pinned
    // deterministic payload.
    let (id, ok, payload) = &responses[3];
    assert_eq!((id.as_str(), *ok), ("4", true));
    assert_eq!(&payload[..], &b"gc: swept\n"[..]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn overload_and_duplicate_ids_answer_in_band_and_in_order() {
    // One worker, one queue slot, and a slow head request: the burst
    // of pings behind it must each get a frame — `pong` if a slot
    // freed up, `error: overloaded` otherwise — in request order,
    // never a dropped frame. A ping reusing the slow request's id is
    // refused in-band while that id is still unanswered.
    let mut script = String::from("{\"id\":\"x\",\"workload\":\"validate\"}\n");
    script.push_str("{\"id\":\"x\",\"workload\":\"ping\"}\n");
    for i in 0..40 {
        script.push_str(&format!("{{\"id\":\"p{i}\",\"workload\":\"ping\"}}\n"));
    }
    script.push_str("{\"id\":\"s\",\"workload\":\"shutdown\"}\n");
    let (responses, _) = serve_session(&["--concurrency", "1", "--queue", "1"], &script);
    assert_eq!(responses.len(), 43, "one frame per request, none dropped");

    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("x", true));
    assert_eq!(payload, &one_shot(&["validate", "--stdout"]));

    let (id, ok, payload) = &responses[1];
    assert_eq!((id.as_str(), *ok), ("x", false), "duplicate id refused");
    assert_eq!(&payload[..], &b"error: id `x` is already in flight\n"[..]);

    let mut overloaded = 0;
    for (i, (id, ok, payload)) in responses[2..42].iter().enumerate() {
        assert_eq!(id, &format!("p{i}"), "frames stay in request order");
        match &payload[..] {
            b"pong\n" => assert!(ok),
            b"error: overloaded\n" => {
                assert!(!ok);
                overloaded += 1;
            }
            other => panic!(
                "p{i}: unexpected payload {:?}",
                String::from_utf8_lossy(other)
            ),
        }
    }
    assert!(overloaded > 0, "the burst never hit the queue bound");
    assert_eq!(
        (
            responses[42].0.as_str(),
            responses[42].1,
            &responses[42].2[..]
        ),
        ("s", true, &b"bye\n"[..])
    );
}

#[test]
fn shutdown_from_a_vanishing_client_still_stops_the_service() {
    // The regression (satellite of the concurrency work): a client
    // that sends `shutdown` and disconnects before reading `bye`
    // makes the session end in an I/O error — which used to swallow
    // the shutdown and leave the accept loop serving forever.
    let (mut child, addr) = spawn_tcp_serve(&[]);
    {
        let mut stream = TcpStream::connect(&addr).expect("connect to serve");
        stream
            .write_all(b"{\"id\":\"s\",\"workload\":\"shutdown\"}\n")
            .expect("shutdown written");
        // Vanish without reading the response.
    }
    assert_exits_cleanly(&mut child, "shutdown from vanished client");
}

#[test]
fn a_client_vanishing_mid_response_leaves_the_service_serving() {
    let (mut child, addr) = spawn_tcp_serve(&[]);
    {
        let mut stream = TcpStream::connect(&addr).expect("connect to serve");
        stream
            .write_all(b"{\"id\":\"gone\",\"workload\":\"figure\",\"args\":[\"fig2\"]}\n")
            .expect("request written");
        // Vanish while the figure is still being computed/written.
    }
    // The next connection must be served as if nothing happened.
    let stream = TcpStream::connect(&addr).expect("reconnect to serve");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(
            b"{\"id\":\"alive\",\"workload\":\"ping\"}\n\
              {\"id\":\"s\",\"workload\":\"shutdown\"}\n",
        )
        .expect("requests written");
    let mut reader = BufReader::new(stream);
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("ping response");
    assert_eq!(
        (id.as_str(), ok, &payload[..]),
        ("alive", true, &b"pong\n"[..])
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("shutdown response");
    assert_eq!((id.as_str(), ok, &payload[..]), ("s", true, &b"bye\n"[..]));
    assert_exits_cleanly(&mut child, "shutdown after vanished client");
}

#[test]
fn a_stalling_client_is_timed_out_in_band_and_the_next_client_is_served() {
    // The regression: the TCP accept loop is sequential and the reader
    // blocks forever on a client that connects and goes silent, so one
    // stalled (or half-dead) client used to wedge the whole service.
    // With `--idle-timeout` the session is closed with an in-band
    // reserved-id error frame and the accept loop moves on.
    let (mut child, addr) = spawn_tcp_serve(&["--idle-timeout", "0.5"]);
    {
        let stream = TcpStream::connect(&addr).expect("connect to serve");
        let mut writer = stream.try_clone().expect("clone stream");
        writer
            .write_all(b"{\"id\":\"warm\",\"workload\":\"ping\"}\n")
            .expect("ping written");
        // ... and stall: never send the newline-terminated next request.
        writer
            .write_all(b"{\"id\":\"half")
            .expect("half request written");
        let mut reader = BufReader::new(stream);
        let (id, ok, payload) = read_response(&mut reader).unwrap().expect("ping response");
        assert_eq!(
            (id.as_str(), ok, &payload[..]),
            ("warm", true, &b"pong\n"[..])
        );
        let (id, ok, payload) = read_response(&mut reader)
            .unwrap()
            .expect("idle-timeout frame");
        assert_eq!((id.as_str(), ok), ("?", false), "reserved-id close frame");
        assert!(
            payload.windows(12).any(|w| w == b"idle timeout"),
            "close frame names the timeout: {:?}",
            String::from_utf8_lossy(&payload)
        );
        assert!(
            read_response(&mut reader).unwrap().is_none(),
            "the session ends after the close frame"
        );
    }
    // The accept loop is free again: a fresh client is served in full.
    let stream = TcpStream::connect(&addr).expect("reconnect to serve");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(
            b"{\"id\":\"next\",\"workload\":\"ping\"}\n\
              {\"id\":\"s\",\"workload\":\"shutdown\"}\n",
        )
        .expect("requests written");
    let mut reader = BufReader::new(stream);
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("ping response");
    assert_eq!(
        (id.as_str(), ok, &payload[..]),
        ("next", true, &b"pong\n"[..])
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("shutdown response");
    assert_eq!((id.as_str(), ok, &payload[..]), ("s", true, &b"bye\n"[..]));
    assert_exits_cleanly(&mut child, "shutdown after stalled client");
}

#[test]
fn hostile_tcp_lines_answer_in_band_and_frames_stay_readable() {
    // A megabyte of junk on one line, an id full of escapes, and the
    // reserved id: each answers with a well-formed frame the strict
    // `read_response` parser (which also guards against hostile byte
    // counts) accepts, and the session survives all of them.
    let (mut child, addr) = spawn_tcp_serve(&[]);
    let stream = TcpStream::connect(&addr).expect("connect to serve");
    let mut writer = stream.try_clone().expect("clone stream");
    let junk = "x".repeat(1 << 20);
    writer.write_all(junk.as_bytes()).expect("junk written");
    writer
        .write_all(
            b"\n\
              {\"id\":\"q\\\"uote\\ttab\",\"workload\":\"ping\"}\n\
              {\"id\":\"?\",\"workload\":\"ping\"}\n\
              {\"id\":\"s\",\"workload\":\"shutdown\"}\n",
        )
        .expect("requests written");
    let mut reader = BufReader::new(stream);
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("junk answered");
    assert_eq!((id.as_str(), ok), ("?", false));
    assert!(payload.starts_with(b"error: "), "junk answer is in-band");
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("escaped id");
    assert_eq!(
        (id.as_str(), ok, &payload[..]),
        ("q\"uote\ttab", true, &b"pong\n"[..])
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("reserved id refused");
    assert_eq!((id.as_str(), ok), ("?", false));
    assert!(
        payload.windows(8).any(|w| w == b"reserved"),
        "reserved-id answer names the reservation: {:?}",
        String::from_utf8_lossy(&payload)
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("shutdown response");
    assert_eq!((id.as_str(), ok, &payload[..]), ("s", true, &b"bye\n"[..]));
    assert_exits_cleanly(&mut child, "shutdown after hostile lines");
}
