//! End-to-end tests of `nanobound serve`: the service's responses must
//! be **byte-identical** to the stdout of the equivalent one-shot CLI
//! invocations — across request order, repetition, cold/warm cache and
//! worker count — and the stdio and TCP transports must speak the same
//! protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use nanobound::service::proto::read_response;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nanobound"))
}

/// Runs a one-shot CLI invocation that must succeed; returns stdout.
fn one_shot(args: &[&str]) -> Vec<u8> {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "one-shot {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Runs a one-shot CLI invocation that must fail; returns stderr.
fn one_shot_failure(args: &[&str]) -> Vec<u8> {
    let out = bin().args(args).output().expect("binary runs");
    assert!(!out.status.success(), "one-shot {args:?} unexpectedly ok");
    out.stderr
}

/// Pipes a scripted session into `nanobound serve <extra>` and returns
/// the parsed responses plus the raw stdout stream.
#[allow(clippy::type_complexity)]
fn serve_session(extra: &[&str], script: &str) -> (Vec<(String, bool, Vec<u8>)>, Vec<u8>) {
    let mut child = bin()
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve exited nonzero");
    let mut reader = BufReader::new(out.stdout.as_slice());
    let mut responses = Vec::new();
    while let Some(response) = read_response(&mut reader).expect("well-framed response stream") {
        responses.push(response);
    }
    (responses, out.stdout)
}

/// A scratch dir holding a small netlist for `profile` requests.
fn scratch_netlist(name: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("nanobound_serve_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xor2.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
    (dir, path.to_str().unwrap().to_owned())
}

const BOUND_ARGS: [&str; 10] = [
    "--size",
    "21",
    "--sensitivity",
    "10",
    "--activity",
    "0.5",
    "--fanin",
    "3",
    "--eps",
    "0.01",
];

fn json_args(args: &[&str]) -> String {
    let quoted: Vec<String> = args.iter().map(|a| format!("\"{a}\"")).collect();
    quoted.join(",")
}

#[test]
fn serve_responses_equal_one_shot_cli_output_byte_for_byte() {
    let (dir, netlist) = scratch_netlist("equiv");
    let profile_args = [netlist.as_str(), "--eps", "0.05", "--patterns", "2000"];
    let script = format!(
        "{{\"id\":\"b\",\"workload\":\"bound\",\"args\":[{}]}}\n\
         {{\"id\":\"f\",\"workload\":\"figure\",\"args\":[\"fig2\"]}}\n\
         {{\"id\":\"p\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"p2\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"bad\",\"workload\":\"profile\",\"args\":[\"/nope/missing.bench\"]}}\n",
        json_args(&BOUND_ARGS),
        json_args(&profile_args),
        json_args(&profile_args),
    );
    let (responses, _) = serve_session(&[], &script);
    assert_eq!(responses.len(), 5);

    let bounds_expected = one_shot(&[&["bounds"][..], &BOUND_ARGS[..]].concat());
    let figure_expected = one_shot(&["figures", "--only", "fig2", "--stdout"]);
    let profile_expected = one_shot(&[&["profile"][..], &profile_args[..]].concat());
    let failure_expected = one_shot_failure(&["profile", "/nope/missing.bench"]);

    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("b", true));
    assert_eq!(
        payload, &bounds_expected,
        "bound payload != `nanobound bounds` stdout"
    );
    let (id, ok, payload) = &responses[1];
    assert_eq!((id.as_str(), *ok), ("f", true));
    assert_eq!(
        payload, &figure_expected,
        "figure payload != `figures --only fig2 --stdout` stdout"
    );
    for index in [2, 3] {
        let (id, ok, payload) = &responses[index];
        assert!(id.starts_with('p'));
        assert!(*ok);
        assert_eq!(
            payload, &profile_expected,
            "profile payload (request {index}) != one-shot stdout"
        );
    }
    let (id, ok, payload) = &responses[4];
    assert_eq!((id.as_str(), *ok), ("bad", false));
    assert_eq!(
        payload, &failure_expected,
        "error payload != one-shot stderr"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_warm_cache_and_worker_count_leave_the_stream_identical() {
    let (dir, netlist) = scratch_netlist("warm");
    let cache = dir.join("cache").to_str().unwrap().to_owned();
    // Mixed-order script touching every deterministic workload,
    // including a replay of an earlier request.
    let script = format!(
        "{{\"id\":\"1\",\"workload\":\"figure\",\"args\":[\"fig4\"]}}\n\
         {{\"id\":\"2\",\"workload\":\"profile\",\"args\":[{}]}}\n\
         {{\"id\":\"3\",\"workload\":\"bound\",\"args\":[{}]}}\n\
         {{\"id\":\"4\",\"workload\":\"figure\",\"args\":[\"fig2\"]}}\n\
         {{\"id\":\"5\",\"workload\":\"figure\",\"args\":[\"fig4\"]}}\n",
        json_args(&[netlist.as_str(), "--eps", "0.01", "--patterns", "2000"]),
        json_args(&BOUND_ARGS),
    );
    let (_, cold_stream) = serve_session(&["--cache-dir", &cache, "--jobs", "1"], &script);
    let (_, warm_stream) = serve_session(&["--cache-dir", &cache, "--jobs", "5"], &script);
    let (_, plain_stream) = serve_session(&["--jobs", "3"], &script);
    assert_eq!(
        cold_stream, warm_stream,
        "warm-cache --jobs 5 stream != cold-cache --jobs 1 stream"
    );
    assert_eq!(
        cold_stream, plain_stream,
        "uncached stream != cached stream"
    );

    // The warm run above must actually have been served from the
    // cache: a fresh session over the same store reports zero misses
    // for a replayed figure.
    let stats_script = "{\"id\":\"f\",\"workload\":\"figure\",\"args\":[\"fig4\"]}\n\
                        {\"id\":\"s\",\"workload\":\"stats\"}\n";
    let (responses, _) = serve_session(&["--cache-dir", &cache], stats_script);
    let stats = String::from_utf8(responses[1].2.clone()).unwrap();
    assert!(
        stats.contains(" 0 misses"),
        "warm figure request missed the cache: {stats}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn validate_over_serve_matches_the_one_shot_cli() {
    let script = "{\"id\":\"v\",\"workload\":\"validate\"}\n";
    let (responses, _) = serve_session(&[], script);
    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("v", true));
    let expected = one_shot(&["validate", "--stdout"]);
    assert_eq!(
        payload, &expected,
        "validate payload != `validate --stdout`"
    );
}

#[test]
fn tcp_transport_speaks_the_same_protocol() {
    let mut child = bin()
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // The service announces the bound address on stderr.
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).expect("stderr readable") > 0,
            "serve exited before announcing its address"
        );
        if let Some(rest) = line
            .trim_end()
            .strip_prefix("nanobound serve: listening on ")
        {
            break rest.to_owned();
        }
    };

    let stream = TcpStream::connect(&addr).expect("connect to serve");
    let mut writer = stream.try_clone().expect("clone stream");
    writer
        .write_all(
            b"{\"id\":\"t1\",\"workload\":\"ping\"}\n\
              {\"id\":\"t2\",\"workload\":\"figure\",\"args\":[\"fig2\"]}\n\
              {\"id\":\"t3\",\"workload\":\"shutdown\"}\n",
        )
        .expect("requests written");
    let mut reader = BufReader::new(stream);
    let (id, ok, payload) = read_response(&mut reader).unwrap().expect("ping response");
    assert_eq!(
        (id.as_str(), ok, &payload[..]),
        ("t1", true, &b"pong\n"[..])
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("figure response");
    assert_eq!((id.as_str(), ok), ("t2", true));
    assert_eq!(
        payload,
        one_shot(&["figures", "--only", "fig2", "--stdout"]),
        "TCP figure payload != one-shot stdout"
    );
    let (id, ok, payload) = read_response(&mut reader)
        .unwrap()
        .expect("shutdown response");
    assert_eq!((id.as_str(), ok, &payload[..]), ("t3", true, &b"bye\n"[..]));
    // Shutdown ends the whole service.
    let status = child.wait().expect("serve exits after shutdown");
    assert!(status.success());
}

#[test]
fn serve_lint_payloads_equal_one_shot_stdout_byte_for_byte() {
    let dirty = format!(
        "{}/tests/fixtures/lint_dirty.bench",
        env!("CARGO_MANIFEST_DIR")
    );
    let script = format!(
        "{{\"id\":\"clean\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"dirty\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"json\",\"workload\":\"lint\",\"args\":[{}]}}\n\
         {{\"id\":\"bad\",\"workload\":\"lint\",\"args\":[\"/nope/missing.bench\"]}}\n",
        json_args(&["--suite", "--deny", "warnings"]),
        json_args(&[dirty.as_str(), "--deny", "warnings"]),
        json_args(&[dirty.as_str(), "--format", "json"]),
    );
    let (responses, _) = serve_session(&[], &script);
    assert_eq!(responses.len(), 4);

    let clean_expected = one_shot(&["lint", "--suite", "--deny", "warnings"]);
    // The denied run exits nonzero one-shot but still prints the full
    // report; the serve frame carries the same bytes with ok=false.
    let denied = bin()
        .args(["lint", dirty.as_str(), "--deny", "warnings"])
        .output()
        .expect("binary runs");
    assert!(!denied.status.success());
    let json_expected = one_shot(&["lint", dirty.as_str(), "--format", "json"]);
    let failure_expected = one_shot_failure(&["lint", "/nope/missing.bench"]);

    let (id, ok, payload) = &responses[0];
    assert_eq!((id.as_str(), *ok), ("clean", true));
    assert_eq!(
        payload, &clean_expected,
        "serve lint payload != one-shot stdout"
    );

    let (id, ok, payload) = &responses[1];
    assert_eq!(
        (id.as_str(), *ok),
        ("dirty", false),
        "denied warnings must flip the ok flag"
    );
    assert_eq!(
        payload, &denied.stdout,
        "denied lint payload != one-shot stdout"
    );

    let (id, ok, payload) = &responses[2];
    assert_eq!((id.as_str(), *ok), ("json", true));
    assert_eq!(payload, &json_expected, "json lint payload != one-shot");

    let (id, ok, payload) = &responses[3];
    assert_eq!((id.as_str(), *ok), ("bad", false));
    assert_eq!(
        payload, &failure_expected,
        "lint failure payload != one-shot stderr"
    );
}
