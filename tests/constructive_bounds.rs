//! Integration of the constructive schemes with the simulator and the
//! bounds: redundancy must buy reliability, and must cost at least what
//! the theory demands.

use nanobound::core::size::strict_size_factor;
use nanobound::gen::{adder, parity};
use nanobound::redundancy::{analysis, multiplex, nmr, MultiplexConfig};
use nanobound::sim::{equivalence, monte_carlo, sensitivity, NoisyConfig};

#[test]
fn tmr_tracks_the_binomial_prediction() {
    // The replica failure probability measured on the bare circuit,
    // pushed through the closed-form majority formula, predicts the
    // TMR failure rate (up to voter noise, which adds a little).
    let tree = parity::parity_tree(8, 2).unwrap();
    let eps = 0.003;
    let config = NoisyConfig::new(eps, 5).unwrap();
    let bare = monte_carlo(&tree, &config, 400_000, 6).unwrap();
    let tmr = nmr(&tree, 3).unwrap();
    let protected = monte_carlo(&tmr, &config, 400_000, 6).unwrap();
    let predicted = analysis::binomial_majority_failure(bare.circuit_error_rate, 3);
    // Voter (one Maj gate) adds ~eps of its own failures.
    assert!(
        protected.circuit_error_rate >= predicted - 0.002,
        "measured {} below prediction {predicted}",
        protected.circuit_error_rate
    );
    assert!(
        protected.circuit_error_rate <= predicted + eps + 0.004,
        "measured {} too far above prediction {predicted} + voter",
        protected.circuit_error_rate
    );
}

#[test]
fn all_schemes_respect_the_strict_size_bound() {
    let rca = adder::ripple_carry(4).unwrap();
    let s0 = rca.gate_count() as f64;
    let s = f64::from(sensitivity::exact(&rca).unwrap());
    let eps = 0.002;
    let config = NoisyConfig::new(eps, 7).unwrap();
    let schemes: Vec<(String, nanobound::logic::Netlist)> = vec![
        ("tmr".into(), nmr(&rca, 3).unwrap()),
        ("5mr".into(), nmr(&rca, 5).unwrap()),
        (
            "mux5".into(),
            multiplex(
                &rca,
                &MultiplexConfig {
                    bundle: 5,
                    restorative_stages: 1,
                    seed: 9,
                },
            )
            .unwrap(),
        ),
    ];
    for (name, scheme) in &schemes {
        let out = monte_carlo(scheme, &config, 100_000, 8).unwrap();
        let actual = scheme.gate_count() as f64 / s0;
        let bound =
            strict_size_factor(s0, s, 2.0, eps, out.circuit_error_rate.clamp(1e-9, 0.499)).unwrap();
        assert!(
            actual + 1e-9 >= bound,
            "{name}: actual factor {actual} below bound {bound}"
        );
    }
}

#[test]
fn protected_circuits_keep_the_function() {
    let rca = adder::ripple_carry(3).unwrap();
    let tmr = nmr(&rca, 3).unwrap();
    assert!(equivalence::equivalent_exhaustive(&rca, &tmr).unwrap());
    let mux = multiplex(
        &rca,
        &MultiplexConfig {
            bundle: 5,
            restorative_stages: 2,
            seed: 2,
        },
    )
    .unwrap();
    assert!(equivalence::equivalent_exhaustive(&rca, &mux).unwrap());
}

/// Ideal-resolution (off-circuit bundle majority) error rate of a
/// multiplexed circuit with one output.
fn ideal_resolution_error(
    source: &nanobound::logic::Netlist,
    cfg: &MultiplexConfig,
    noise: &NoisyConfig,
    patterns: usize,
) -> f64 {
    use nanobound::redundancy::multiplex_full;
    use nanobound::sim::{evaluate_noisy, evaluate_packed, PatternSet};
    let mux = multiplex_full(source, cfg).unwrap();
    let set = PatternSet::random(source.input_count(), patterns, 17);
    let clean = evaluate_packed(source, &set).unwrap();
    let noisy = evaluate_noisy(&mux.netlist, &set, noise).unwrap();
    let reference = clean.node(source.outputs()[0].driver);
    let bundle = &mux.output_bundles[0];
    let mut wrong = 0usize;
    for lane in 0..set.count() {
        let stimulated = bundle.iter().filter(|&&w| noisy.bit(w, lane)).count();
        let ideal = stimulated > cfg.bundle / 2;
        let expect = reference[lane / 64] >> (lane % 64) & 1 == 1;
        wrong += usize::from(ideal != expect);
    }
    wrong as f64 / set.count() as f64
}

#[test]
fn restoration_threshold_separates_regimes_in_simulation() {
    // Von Neumann's restoring organ earns its cost on *deep* circuits:
    // without it, executive stages compound bundle degradation toward a
    // coin flip; with it, the per-wire error is pinned near its fixed
    // point — provided ε is below the ε* ≈ 0.0886 threshold. Resolution
    // is taken off-circuit (bundle majority) to isolate the bundle
    // statistics from resolver noise.
    let chain = parity::parity_chain(16).unwrap(); // deep: 15 chained XORs
    let below = NoisyConfig::new(0.01, 3).unwrap();
    let plain_cfg = MultiplexConfig {
        bundle: 9,
        restorative_stages: 0,
        seed: 4,
    };
    let restored_cfg = MultiplexConfig {
        bundle: 9,
        restorative_stages: 1,
        seed: 4,
    };

    let plain_low = ideal_resolution_error(&chain, &plain_cfg, &below, 60_000);
    let restored_low = ideal_resolution_error(&chain, &restored_cfg, &below, 60_000);
    assert!(
        restored_low < plain_low,
        "below threshold: restored {restored_low} vs plain {plain_low}"
    );

    // Far above threshold restoration cannot help: the bundle forgets
    // its value and parity of a forgotten bundle is a coin flip.
    let above = NoisyConfig::new(0.2, 3).unwrap();
    let restored_high = ideal_resolution_error(&chain, &restored_cfg, &above, 60_000);
    assert!(
        restored_high > 0.4,
        "above threshold restoration still 'works': {restored_high}"
    );
}
