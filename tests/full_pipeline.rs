//! End-to-end integration: generate → optimize → map → simulate →
//! profile → bounds, spanning every substrate crate through the facade.

use nanobound::core::{BoundReport, DepthBound};
use nanobound::experiments::profiles::{profile_benchmark, profile_netlist, ProfileConfig};
use nanobound::gen::{adder, iscas, standard_suite};
use nanobound::logic::{transform, CircuitStats};
use nanobound::sim::equivalence;

fn quick_config() -> ProfileConfig {
    ProfileConfig {
        patterns: 2_000,
        sensitivity_samples: 128,
        ..Default::default()
    }
}

#[test]
fn pipeline_preserves_function_and_respects_fanin() {
    for b in standard_suite().unwrap() {
        let mapped = transform::prepare(&b.netlist, 3).unwrap();
        let stats = CircuitStats::of(&mapped);
        assert!(
            stats.max_fanin <= 3,
            "{}: fanin {}",
            b.name,
            stats.max_fanin
        );
        // Function preserved: exhaustive where cheap, random elsewhere.
        let equivalent = if b.netlist.input_count() <= 14 {
            equivalence::equivalent_exhaustive(&b.netlist, &mapped).unwrap()
        } else {
            equivalence::equivalent_random(&b.netlist, &mapped, 4096, 1).unwrap()
        };
        assert!(equivalent, "{}: mapping changed the function", b.name);
    }
}

#[test]
fn every_suite_profile_supports_every_bound() {
    let config = quick_config();
    for b in standard_suite().unwrap() {
        let p = profile_benchmark(&b, &config).unwrap();
        p.profile.validate().unwrap();
        for eps in [0.0, 0.001, 0.01, 0.1] {
            let r = BoundReport::evaluate(&p.profile, eps, 0.01).unwrap();
            assert!(r.size_factor >= 1.0, "{} at {eps}", b.name);
            assert!(r.total_energy_factor > 0.0, "{} at {eps}", b.name);
            assert!(
                r.noisy_activity >= 0.0 && r.noisy_activity <= 1.0,
                "{} at {eps}",
                b.name
            );
            // Fanin-3 library keeps ε = 0.1 inside the feasible region.
            if eps <= 0.1 {
                assert!(
                    matches!(r.depth_bound, DepthBound::Bounded(_)),
                    "{} at {eps}: {:?}",
                    b.name,
                    r.depth_bound
                );
            }
        }
    }
}

#[test]
fn measured_sensitivity_matches_analytic_hint() {
    // The pipeline's measured sensitivity agrees with the generator's
    // analytic value where both are available (exact range).
    let rca = adder::ripple_carry(8).unwrap(); // 17 inputs: exact
    let measured = profile_netlist(&rca, None, &quick_config()).unwrap();
    assert_eq!(
        measured.profile.sensitivity,
        f64::from(adder::adder_sensitivity(8))
    );
}

#[test]
fn bounds_scale_with_problem_difficulty() {
    // Wider adders (higher sensitivity) pay a higher energy factor at
    // the same operating point — the s·log s term at work.
    let config = quick_config();
    let mut last = 0.0;
    for width in [8usize, 16, 32] {
        let rca = adder::ripple_carry(width).unwrap();
        let p = profile_netlist(&rca, Some(adder::adder_sensitivity(width)), &config).unwrap();
        let r = BoundReport::evaluate(&p.profile, 0.01, 0.01).unwrap();
        assert!(
            r.total_energy_factor > last,
            "width {width}: {} not above {last}",
            r.total_energy_factor
        );
        last = r.total_energy_factor;
    }
}

#[test]
fn xor_heavy_and_control_circuits_land_in_expected_regimes() {
    let config = quick_config();
    let xor = profile_netlist(&iscas::c499_analog().unwrap(), None, &config).unwrap();
    let control = profile_netlist(&iscas::c432_analog().unwrap(), None, &config).unwrap();
    // XOR-dominated logic switches more than priority/control logic.
    assert!(
        xor.profile.activity > control.profile.activity,
        "xor {} vs control {}",
        xor.profile.activity,
        control.profile.activity
    );
    // Under noise, the low-activity circuit's leakage share shrinks.
    let r = BoundReport::evaluate(&control.profile, 0.1, 0.01).unwrap();
    assert!(r.leakage_ratio_factor < 1.0);
}
