//! Integration tests for figure regeneration (determinism, golden
//! shapes) and the netlist interchange formats.

use nanobound::experiments::{fig2, fig3, fig4, fig5, fig6};
use nanobound::gen::{adder, iscas};
use nanobound::io::{bench, blif, Design};
use nanobound::sim::equivalence;

#[test]
fn closed_form_figures_are_deterministic() {
    // Closed-form figures carry no randomness at all: regenerating must
    // reproduce the exact CSV bytes.
    let once = fig3::generate().unwrap().tables[0].to_csv();
    let twice = fig3::generate().unwrap().tables[0].to_csv();
    assert_eq!(once, twice);
}

#[test]
fn figure_tables_have_expected_shapes() {
    let f2 = fig2::generate().unwrap();
    assert_eq!(f2.tables[0].columns().len(), 7); // sw + 6 epsilons
    let f3 = fig3::generate().unwrap();
    assert_eq!(f3.tables[0].columns().len(), 4); // eps + 3 fanins
    let f4 = fig4::generate().unwrap();
    assert_eq!(f4.tables[0].columns().len(), 6); // eps + 5 activities
    let f5 = fig5::generate().unwrap();
    assert_eq!(f5.tables[0].columns().len(), 7); // eps + 3 delay + 3 edp
    assert_eq!(f5.charts.len(), 2);
    let f6 = fig6::generate().unwrap();
    assert_eq!(f6.tables[0].columns().len(), 4);
}

#[test]
fn figures_render_without_panics() {
    for fig in [
        fig2::generate().unwrap(),
        fig3::generate().unwrap(),
        fig4::generate().unwrap(),
        fig5::generate().unwrap(),
        fig6::generate().unwrap(),
    ] {
        let rendered = fig.render();
        assert!(rendered.contains(fig.id));
        assert!(rendered.len() > 100, "{} render too small", fig.id);
    }
}

#[test]
fn bench_format_roundtrips_generated_circuits() {
    for netlist in [iscas::c17(), adder::ripple_carry(4).unwrap()] {
        let text = bench::write(&Design::combinational(netlist.clone()));
        let parsed = bench::parse(&text).unwrap();
        assert!(!parsed.is_sequential());
        assert!(
            equivalence::equivalent_exhaustive(&netlist, &parsed.netlist).unwrap(),
            "{}: bench round-trip changed the function",
            netlist.name()
        );
    }
}

#[test]
fn blif_format_roundtrips_generated_circuits() {
    for netlist in [iscas::c17(), adder::carry_lookahead(3).unwrap()] {
        let text = blif::write(&Design::combinational(netlist.clone())).unwrap();
        let parsed = blif::parse(&text).unwrap();
        assert!(
            equivalence::equivalent_exhaustive(&netlist, &parsed.netlist).unwrap(),
            "{}: BLIF round-trip changed the function",
            netlist.name()
        );
    }
}

#[test]
fn cross_format_conversion_preserves_function() {
    // bench → netlist → BLIF → netlist: still the same circuit.
    let original = adder::ripple_carry(3).unwrap();
    let bench_text = bench::write(&Design::combinational(original.clone()));
    let from_bench = bench::parse(&bench_text).unwrap().netlist;
    let blif_text = blif::write(&Design::combinational(from_bench)).unwrap();
    let from_blif = blif::parse(&blif_text).unwrap().netlist;
    assert!(equivalence::equivalent_exhaustive(&original, &from_blif).unwrap());
}
