//! Golden-file regression gate over the `figures` artifacts.
//!
//! The CSVs under `tests/golden/` are the committed output of
//! `nanobound figures`. This test regenerates them — once on the serial
//! engine and once with several workers — and requires byte-for-byte
//! equality, so it catches both figure drift (a bound formula or sweep
//! grid changed without refreshing the goldens) and any nondeterminism
//! the parallel runner would introduce (worker-dependent RNG streams,
//! order-dependent float accumulation, racy table assembly).
//!
//! To refresh after an intentional figure change:
//! `cargo run --release -- figures --out tests/golden`.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Runs `nanobound figures --out <dir> --jobs <jobs>` and returns the
/// produced files as name → bytes.
fn regenerate(dir: &Path, jobs: &str) -> BTreeMap<String, Vec<u8>> {
    let out = Command::new(env!("CARGO_BIN_EXE_nanobound"))
        .args(["figures", "--out", dir.to_str().unwrap(), "--jobs", jobs])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "figures --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    read_csvs(dir)
}

fn read_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap())
        .filter(|entry| entry.path().extension().is_some_and(|x| x == "csv"))
        .map(|entry| {
            (
                entry.file_name().into_string().unwrap(),
                std::fs::read(entry.path()).unwrap(),
            )
        })
        .collect()
}

fn golden_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_matches_golden(fresh: &BTreeMap<String, Vec<u8>>, label: &str) {
    let golden = read_csvs(&golden_dir());
    assert!(!golden.is_empty(), "no golden CSVs committed");
    // Pin the full artifact set explicitly: coverage of the
    // profile-driven figures (fig7, fig8, headline) is a contract, not
    // an accident of what happens to be committed.
    for required in [
        "fig2.csv",
        "fig3.csv",
        "fig4.csv",
        "fig5.csv",
        "fig6.csv",
        "fig7.csv",
        "fig8.csv",
        "headline.csv",
    ] {
        assert!(
            golden.contains_key(required),
            "tests/golden/ is missing {required}"
        );
    }
    assert_eq!(
        fresh.keys().collect::<Vec<_>>(),
        golden.keys().collect::<Vec<_>>(),
        "{label}: artifact set diverged from tests/golden/"
    );
    for (name, bytes) in &golden {
        assert_eq!(
            &fresh[name], bytes,
            "{label}: {name} differs from the committed golden \
             (refresh with `cargo run --release -- figures --out tests/golden` \
             if the figure change is intentional)"
        );
    }
}

#[test]
fn serial_figures_match_the_committed_goldens() {
    let dir = std::env::temp_dir().join("nanobound_golden_j1");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = regenerate(&dir, "1");
    assert_matches_golden(&fresh, "--jobs 1");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_figures_match_the_committed_goldens() {
    // 5 workers: deliberately coprime to every sweep length in the
    // figure set, so contiguous-block dealing never aligns with a
    // family boundary by luck.
    let dir = std::env::temp_dir().join("nanobound_golden_j5");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = regenerate(&dir, "5");
    assert_matches_golden(&fresh, "--jobs 5");
    std::fs::remove_dir_all(&dir).unwrap();
}
