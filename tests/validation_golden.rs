//! Golden-file regression gate over the `validate` artifacts.
//!
//! The CSVs under `tests/golden/validation/` are the committed output
//! of `nanobound validate`. Like the figure goldens, they are
//! regenerated on the serial engine and with several workers and must
//! match byte for byte — catching both drift in the validation
//! experiments (Monte-Carlo seeds, redundancy constructions, table
//! formatting) and any worker-count dependence in the sharded runner.
//!
//! To refresh after an intentional change:
//! `cargo run --release -- validate --out tests/golden/validation`.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

fn read_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.unwrap())
        .filter(|entry| entry.path().extension().is_some_and(|x| x == "csv"))
        .map(|entry| {
            (
                entry.file_name().into_string().unwrap(),
                std::fs::read(entry.path()).unwrap(),
            )
        })
        .collect()
}

fn regenerate(dir: &Path, jobs: &str) -> BTreeMap<String, Vec<u8>> {
    let out = Command::new(env!("CARGO_BIN_EXE_nanobound"))
        .args(["validate", "--out", dir.to_str().unwrap(), "--jobs", jobs])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "validate --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    read_csvs(dir)
}

fn assert_matches_golden(fresh: &BTreeMap<String, Vec<u8>>, label: &str) {
    let golden = read_csvs(&Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/validation"));
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        vec!["v1.csv", "v2.csv"],
        "golden validation set incomplete"
    );
    assert_eq!(
        fresh.keys().collect::<Vec<_>>(),
        golden.keys().collect::<Vec<_>>(),
        "{label}: artifact set diverged from tests/golden/validation/"
    );
    for (name, bytes) in &golden {
        assert_eq!(
            &fresh[name], bytes,
            "{label}: {name} differs from the committed golden (refresh with \
             `cargo run --release -- validate --out tests/golden/validation` \
             if the change is intentional)"
        );
    }
}

#[test]
fn serial_validation_matches_the_committed_goldens() {
    let dir = std::env::temp_dir().join("nanobound_validation_golden_j1");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = regenerate(&dir, "1");
    assert_matches_golden(&fresh, "--jobs 1");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_validation_matches_the_committed_goldens() {
    // 5 workers, coprime to the shard counts, as in the figure gate.
    let dir = std::env::temp_dir().join("nanobound_validation_golden_j5");
    let _ = std::fs::remove_dir_all(&dir);
    let fresh = regenerate(&dir, "5");
    assert_matches_golden(&fresh, "--jobs 5");
    std::fs::remove_dir_all(&dir).unwrap();
}
